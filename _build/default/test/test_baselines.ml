open Es_edge
open Es_baselines

let cluster = lazy (Scenario.build Scenario.default)

let test_all_produce_valid_sized_output () =
  let c = Lazy.force cluster in
  List.iter
    (fun (b : Baselines.t) ->
      let ds = b.Baselines.solve c in
      Alcotest.(check int) (b.Baselines.name ^ " covers all devices") (Cluster.n_devices c)
        (Array.length ds);
      (* Baselines may overload (that is their flaw), but they must never
         oversubscribe physical capacity. *)
      match Decision.validate c ds with
      | Ok () -> ()
      | Error e ->
          (* The accuracy floor can legitimately be violated by the plain
             DeviceOnly/ServerOnly strawmen only if the floor exceeds the
             full-model accuracy — which scenarios never generate. *)
          Alcotest.fail (b.Baselines.name ^ ": " ^ e))
    (Baselines.all ())

let test_device_only_never_offloads () =
  let c = Lazy.force cluster in
  let ds = Baselines.device_only.Baselines.solve c in
  Array.iter
    (fun d -> Alcotest.(check bool) "local" false (Decision.offloads d))
    ds

let test_exit_local_meets_floor_locally () =
  let c = Lazy.force cluster in
  let ds = Baselines.exit_local.Baselines.solve c in
  Array.iteri
    (fun i (d : Decision.t) ->
      Alcotest.(check bool) "local" false (Decision.offloads d);
      Alcotest.(check bool) "floor met" true
        (d.Decision.plan.Es_surgery.Plan.accuracy
        >= c.Cluster.devices.(i).Cluster.accuracy_floor -. 1e-9);
      (* ExitLocal must be no slower than DeviceOnly on every device. *)
      let full = Es_surgery.Plan.device_only c.Cluster.devices.(i).Cluster.model in
      let perf = c.Cluster.devices.(i).Cluster.proc.Processor.perf in
      Alcotest.(check bool) "no slower than the full model" true
        (Es_surgery.Plan.device_time perf d.Decision.plan
        <= Es_surgery.Plan.device_time perf full +. 1e-9))
    ds

let test_server_only_ships_everything () =
  let c = Lazy.force cluster in
  let ds = Baselines.server_only.Baselines.solve c in
  Array.iter
    (fun (d : Decision.t) ->
      Alcotest.(check bool) "full offload" true (Es_surgery.Plan.is_server_only d.Decision.plan);
      Alcotest.(check bool) "offloads" true (Decision.offloads d))
    ds

let test_neurosurgeon_no_surgery () =
  let c = Lazy.force cluster in
  let ds = Baselines.neurosurgeon.Baselines.solve c in
  Array.iter
    (fun (d : Decision.t) ->
      let p = d.Decision.plan in
      Alcotest.(check (float 1e-9)) "full width" 1.0 p.Es_surgery.Plan.width;
      Alcotest.(check bool) "full depth" true (p.Es_surgery.Plan.exit_node = None))
    ds

let test_neurosurgeon_beats_extremes () =
  let c = Lazy.force cluster in
  let obj ds = Es_joint.Objective.of_decisions c ds in
  let ns = obj (Baselines.neurosurgeon.Baselines.solve c) in
  let dev = obj (Baselines.device_only.Baselines.solve c) in
  let srv = obj (Baselines.server_only.Baselines.solve c) in
  (* Partial offload picks per-device the better of the two extremes (or
     better): it can't lose to both. *)
  Alcotest.(check bool)
    (Printf.sprintf "neurosurgeon %.3f <= max(device %.3f, server %.3f)" ns dev srv)
    true
    (ns <= Float.max dev srv +. 1e-6)

let test_random_deterministic_per_seed () =
  let c = Lazy.force cluster in
  let a = (Baselines.random_policy 5).Baselines.solve c in
  let b = (Baselines.random_policy 5).Baselines.solve c in
  Array.iteri
    (fun i (d : Decision.t) ->
      Alcotest.(check int) "same server" d.Decision.server b.(i).Decision.server)
    a;
  let differs =
    let other = (Baselines.random_policy 6).Baselines.solve c in
    Array.exists2 (fun (x : Decision.t) (y : Decision.t) -> x.Decision.server <> y.Decision.server || x.Decision.plan != y.Decision.plan) a other
  in
  Alcotest.(check bool) "different seed differs" true differs

let test_edgesurgeon_wins_or_ties_every_baseline () =
  let c = Lazy.force cluster in
  let obj ds = Es_joint.Objective.of_decisions c ds in
  let joint = obj (Baselines.edgesurgeon.Baselines.solve c) in
  List.iter
    (fun (b : Baselines.t) ->
      let v = obj (b.Baselines.solve c) in
      Alcotest.(check bool)
        (Printf.sprintf "EdgeSurgeon %.3f <= %s %.3f" joint b.Baselines.name v)
        true (joint <= v +. 1e-6))
    (Baselines.all ())

let test_baselines_across_scenarios () =
  List.iter
    (fun name ->
      let c = Scenario.build (Es_workload.Scenarios.by_name name) in
      List.iter
        (fun (b : Baselines.t) ->
          let ds = b.Baselines.solve c in
          match Decision.validate c ds with
          | Ok () -> ()
          | Error e -> Alcotest.fail (Printf.sprintf "%s on %s: %s" b.Baselines.name name e))
        [ Baselines.neurosurgeon; Baselines.server_only; Baselines.edgesurgeon ])
    Es_workload.Scenarios.names

let () =
  Alcotest.run "es_baselines"
    [
      ( "baselines",
        [
          Alcotest.test_case "all valid" `Quick test_all_produce_valid_sized_output;
          Alcotest.test_case "device-only local" `Quick test_device_only_never_offloads;
          Alcotest.test_case "exit-local floor" `Quick test_exit_local_meets_floor_locally;
          Alcotest.test_case "server-only ships all" `Quick test_server_only_ships_everything;
          Alcotest.test_case "neurosurgeon no surgery" `Quick test_neurosurgeon_no_surgery;
          Alcotest.test_case "neurosurgeon vs extremes" `Quick test_neurosurgeon_beats_extremes;
          Alcotest.test_case "random seeded" `Quick test_random_deterministic_per_seed;
          Alcotest.test_case "edgesurgeon dominates" `Slow
            test_edgesurgeon_wins_or_ties_every_baseline;
          Alcotest.test_case "across scenarios" `Slow test_baselines_across_scenarios;
        ] );
    ]
