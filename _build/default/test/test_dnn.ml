open Es_dnn

let qtest ?(count = 100) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

(* ---------- Shape ---------- *)

let test_shape_basics () =
  let m = Shape.map ~c:3 ~h:224 ~w:224 in
  Alcotest.(check int) "elements" (3 * 224 * 224) (Shape.elements m);
  Alcotest.(check int) "bytes fp32" (3 * 224 * 224 * 4) (Shape.bytes m);
  Alcotest.(check int) "bytes int8" (3 * 224 * 224) (Shape.bytes ~bytes_per_elt:1 m);
  Alcotest.(check int) "channels" 3 (Shape.channels m);
  Alcotest.(check (pair int int)) "spatial" (224, 224) (Shape.spatial m);
  let v = Shape.vec 1000 in
  Alcotest.(check int) "vec elements" 1000 (Shape.elements v);
  Alcotest.(check (pair int int)) "vec spatial" (1, 1) (Shape.spatial v)

let test_shape_conv_out () =
  (* AlexNet's first conv: 224 -> 55 with k=11 s=4 p=2. *)
  let s = Shape.conv_out (Shape.map ~c:3 ~h:224 ~w:224) ~kernel:11 ~stride:4 ~pad:2 ~out_c:96 in
  Alcotest.(check bool) "alexnet conv1" true (Shape.equal s (Shape.map ~c:96 ~h:55 ~w:55));
  let s = Shape.conv_out (Shape.map ~c:64 ~h:56 ~w:56) ~kernel:3 ~stride:1 ~pad:1 ~out_c:64 in
  Alcotest.(check bool) "same padding preserves" true (Shape.equal s (Shape.map ~c:64 ~h:56 ~w:56))

let test_shape_errors () =
  Alcotest.check_raises "vec conv" (Invalid_argument "Shape.conv_out: convolution over a vector")
    (fun () -> ignore (Shape.conv_out (Shape.vec 10) ~kernel:3 ~stride:1 ~pad:0 ~out_c:1));
  Alcotest.check_raises "window too large"
    (Invalid_argument "Shape.conv_out: window does not fit") (fun () ->
      ignore (Shape.conv_out (Shape.map ~c:1 ~h:2 ~w:2) ~kernel:5 ~stride:1 ~pad:0 ~out_c:1));
  Alcotest.check_raises "bad dims" (Invalid_argument "Shape.map: non-positive dimension")
    (fun () -> ignore (Shape.map ~c:0 ~h:1 ~w:1))

let test_shape_scale_channels () =
  let m = Shape.scale_channels 0.5 (Shape.map ~c:64 ~h:8 ~w:8) in
  Alcotest.(check int) "half channels" 32 (Shape.channels m);
  let tiny = Shape.scale_channels 0.01 (Shape.map ~c:4 ~h:8 ~w:8) in
  Alcotest.(check int) "floored at 1" 1 (Shape.channels tiny)

(* ---------- Layer ---------- *)

let fm ~c ~h ~w = Shape.map ~c ~h ~w

let test_layer_conv_flops () =
  let layer = Layer.Conv { out_c = 64; kernel = 3; stride = 1; pad = 1; groups = 1 } in
  let flops = Layer.flops layer [ fm ~c:32 ~h:10 ~w:10 ] in
  Alcotest.(check (float 1.0)) "conv flops" (2.0 *. 9.0 *. 32.0 *. 64.0 *. 100.0) flops

let test_layer_depthwise_flops () =
  let dw = Layer.Conv { out_c = 32; kernel = 3; stride = 1; pad = 1; groups = 32 } in
  let flops = Layer.flops dw [ fm ~c:32 ~h:10 ~w:10 ] in
  Alcotest.(check (float 1.0)) "depthwise = dense/cin" (2.0 *. 9.0 *. 1.0 *. 32.0 *. 100.0) flops

let test_layer_fc () =
  let fc = Layer.Fc { out_features = 10 } in
  Alcotest.(check (float 0.001)) "fc flops" (2.0 *. 100.0 *. 10.0)
    (Layer.flops fc [ Shape.vec 100 ]);
  Alcotest.(check (float 0.001)) "fc params" (100.0 *. 10.0 +. 10.0)
    (Layer.params fc [ Shape.vec 100 ]);
  Alcotest.check_raises "fc over map"
    (Invalid_argument "Layer.output_shape: Fc over a feature map (flatten first)") (fun () ->
      ignore (Layer.output_shape fc [ fm ~c:1 ~h:2 ~w:2 ]))

let test_layer_add_concat () =
  let a = fm ~c:16 ~h:8 ~w:8 in
  Alcotest.(check bool) "add keeps shape" true
    (Shape.equal a (Layer.output_shape Layer.Add [ a; a ]));
  Alcotest.check_raises "add mismatched"
    (Invalid_argument "Layer.output_shape: Add over mismatched shapes") (fun () ->
      ignore (Layer.output_shape Layer.Add [ a; fm ~c:8 ~h:8 ~w:8 ]));
  let c = Layer.output_shape Layer.Concat [ a; fm ~c:8 ~h:8 ~w:8 ] in
  Alcotest.(check int) "concat channels" 24 (Shape.channels c);
  Alcotest.check_raises "concat mismatched spatial"
    (Invalid_argument "Layer.output_shape: Concat over mismatched maps") (fun () ->
      ignore (Layer.output_shape Layer.Concat [ a; fm ~c:8 ~h:4 ~w:4 ]))

let test_layer_pool_and_misc () =
  let p = Layer.Pool { kind = Layer.Max; kernel = 2; stride = 2; pad = 0 } in
  let out = Layer.output_shape p [ fm ~c:8 ~h:8 ~w:8 ] in
  Alcotest.(check bool) "pool halves" true (Shape.equal out (fm ~c:8 ~h:4 ~w:4));
  let g = Layer.output_shape (Layer.Global_pool Layer.Avg) [ fm ~c:8 ~h:7 ~w:7 ] in
  Alcotest.(check bool) "global pool 1x1" true (Shape.equal g (fm ~c:8 ~h:1 ~w:1));
  let f = Layer.output_shape Layer.Flatten [ fm ~c:8 ~h:2 ~w:2 ] in
  Alcotest.(check bool) "flatten" true (Shape.equal f (Shape.vec 32));
  Alcotest.(check (float 0.001)) "pool has no params" 0.0 (Layer.params p [ fm ~c:8 ~h:8 ~w:8 ]);
  Alcotest.(check (float 0.001)) "bn params 2c" 16.0
    (Layer.params Layer.Batch_norm [ fm ~c:8 ~h:4 ~w:4 ])

(* ---------- Graph ---------- *)

let small_chain () =
  Graph.sequential ~name:"tiny" ~input:(fm ~c:3 ~h:8 ~w:8)
    [
      (None, false, Layer.Conv { out_c = 4; kernel = 3; stride = 1; pad = 1; groups = 1 });
      (None, true, Layer.Relu);
      (None, false, Layer.Flatten);
      (Some "logits", false, Layer.Fc { out_features = 10 });
      (None, false, Layer.Softmax);
    ]

let branchy () =
  let b, x = Graph.Builder.create ~name:"branchy" ~input:(fm ~c:3 ~h:8 ~w:8) in
  let c1 =
    Graph.Builder.add b (Layer.Conv { out_c = 4; kernel = 1; stride = 1; pad = 0; groups = 1 }) [ x ]
  in
  let c2 =
    Graph.Builder.add b (Layer.Conv { out_c = 4; kernel = 3; stride = 1; pad = 1; groups = 1 }) [ x ]
  in
  let cat = Graph.Builder.add b Layer.Concat [ c1; c2 ] in
  Graph.Builder.finish ~output:cat b

let test_graph_build_validate () =
  let g = small_chain () in
  Alcotest.(check int) "nodes" 6 (Graph.n_nodes g);
  (match Graph.validate g with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "output is softmax shape" true
    (Shape.equal (Graph.output_shape g) (Shape.vec 10));
  Alcotest.(check (list int)) "exit candidates" [ 2 ] (Graph.exit_candidate_ids g)

let test_graph_builder_errors () =
  let b, _ = Graph.Builder.create ~name:"x" ~input:(fm ~c:1 ~h:4 ~w:4) in
  Alcotest.check_raises "unknown pred"
    (Invalid_argument "Graph.Builder.add: unknown predecessor 5") (fun () ->
      ignore (Graph.Builder.add b Layer.Relu [ 5 ]));
  Alcotest.check_raises "no preds"
    (Invalid_argument "Graph.Builder.add: a non-input node needs predecessors") (fun () ->
      ignore (Graph.Builder.add b Layer.Relu []))

let test_graph_flops_decompose () =
  let g = small_chain () in
  let total = Graph.total_flops g in
  let by_parts = Graph.prefix_flops g 3 +. Graph.suffix_flops g 3 in
  Alcotest.(check (float 1e-6)) "prefix + suffix = total" total by_parts;
  Alcotest.(check (float 1e-6)) "prefix at 0 empty" 0.0 (Graph.prefix_flops g 0);
  Alcotest.(check (float 1e-6)) "suffix at n empty" 0.0 (Graph.suffix_flops g (Graph.n_nodes g))

let test_graph_cut_transfer () =
  let g = small_chain () in
  Alcotest.(check (float 0.001)) "cut 0 = input bytes"
    (float_of_int (3 * 8 * 8 * 4))
    (Graph.cut_transfer_bytes g 0);
  Alcotest.(check (float 0.001)) "cut n = 0" 0.0 (Graph.cut_transfer_bytes g (Graph.n_nodes g));
  Alcotest.(check (float 0.001)) "single consumer"
    (float_of_int (4 * 8 * 8 * 4))
    (Graph.cut_transfer_bytes g 3)

let test_graph_cut_shared_activation () =
  (* Cutting right after the input: both branches consume node 0's output;
     it must be shipped once, not twice. *)
  let g = branchy () in
  Alcotest.(check (float 0.001)) "shared activation counted once"
    (float_of_int (3 * 8 * 8 * 4))
    (Graph.cut_transfer_bytes g 1)

let test_graph_successors () =
  let g = branchy () in
  Alcotest.(check (list int)) "input feeds both convs" [ 1; 2 ] (Graph.successors g 0);
  Alcotest.(check (list int)) "concat is terminal" [] (Graph.successors g 3)

let test_scale_width () =
  let g = small_chain () in
  let half = Graph.scale_width 0.5 g in
  (match Graph.validate half with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "fewer flops" true (Graph.total_flops half < Graph.total_flops g);
  Alcotest.(check bool) "classifier head unchanged" true
    (Shape.equal (Graph.output_shape half) (Shape.vec 10));
  Alcotest.(check bool) "width 1 is identity" true (Graph.scale_width 1.0 g == g);
  Alcotest.check_raises "bad factor" (Invalid_argument "Graph.scale_width: factor outside (0,1]")
    (fun () -> ignore (Graph.scale_width 1.5 g))

let test_scale_width_zoo () =
  (* Residual/branchy models must stay shape-consistent after slimming. *)
  List.iter
    (fun name ->
      let g = Zoo.by_name name in
      List.iter
        (fun w ->
          let s = Graph.scale_width w g in
          match Graph.validate s with
          | Ok () -> ()
          | Error e -> Alcotest.fail (Printf.sprintf "%s @%.2f: %s" name w e))
        [ 0.75; 0.5; 0.25 ])
    [ "resnet50"; "mobilenet_v2"; "inception_lite" ]

(* ---------- Zoo ---------- *)

let test_zoo_all_valid () =
  List.iter
    (fun g ->
      match Graph.validate g with
      | Ok () -> ()
      | Error e -> Alcotest.fail (g.Graph.name ^ ": " ^ e))
    (Zoo.all ())

let close_pct ~pct expected actual =
  Float.abs (actual -. expected) /. expected < pct /. 100.0

(* Published GFLOPs (2 FLOPs per MAC) and Mparams; the zoo must land close
   since all surgery trade-offs are driven by these numbers. *)
let test_zoo_published_costs () =
  let check name gflops mparams tol_pct =
    let g = Zoo.by_name name in
    let got_f = Graph.total_flops g /. 1e9 in
    let got_p = Graph.total_params g /. 1e6 in
    if not (close_pct ~pct:tol_pct gflops got_f) then
      Alcotest.fail (Printf.sprintf "%s flops: expected ~%.2f got %.2f" name gflops got_f);
    if not (close_pct ~pct:tol_pct mparams got_p) then
      Alcotest.fail (Printf.sprintf "%s params: expected ~%.2f got %.2f" name mparams got_p)
  in
  check "vgg16" 31.0 138.4 5.0;
  check "resnet18" 3.6 11.7 5.0;
  check "resnet50" 8.2 25.6 5.0;
  check "mobilenet_v1" 1.14 4.2 8.0;
  check "mobilenet_v2" 0.6 3.5 8.0

let test_zoo_exits_exist () =
  List.iter
    (fun g ->
      let exits = Graph.exit_candidate_ids g in
      Alcotest.(check bool) (g.Graph.name ^ " has >=3 exits") true (List.length exits >= 3);
      List.iter
        (fun id -> Alcotest.(check bool) "exit id in range" true (id > 0 && id < Graph.n_nodes g))
        exits)
    (Zoo.all ())

let test_zoo_by_name () =
  List.iter
    (fun n ->
      let g = Zoo.by_name n in
      Alcotest.(check string) "name round-trips" n g.Graph.name)
    Zoo.names;
  Alcotest.check_raises "unknown model" Not_found (fun () -> ignore (Zoo.by_name "lenet"))

let test_zoo_classifier_output () =
  List.iter
    (fun n ->
      let g = Zoo.by_name n in
      Alcotest.(check bool) (n ^ " outputs 1000 classes") true
        (Shape.equal (Graph.output_shape g) (Shape.vec 1000)))
    [
      "alexnet"; "vgg16"; "resnet18"; "resnet34"; "resnet50"; "mobilenet_v1"; "mobilenet_v2";
      "inception_lite"; "squeezenet"; "densenet_lite";
    ]

let test_zoo_detector_output () =
  let g = Zoo.by_name "yolo_tiny" in
  Alcotest.(check bool) "13x13x125 grid" true
    (Shape.equal (Graph.output_shape g) (Shape.map ~c:125 ~h:13 ~w:13))

(* ---------- Profile ---------- *)

let perf_fast = Profile.perf ~flops_per_s:1e12 ~mem_bytes_per_s:1e11 ~layer_overhead_s:0.0
let perf_slow = Profile.perf ~flops_per_s:1e9 ~mem_bytes_per_s:1e9 ~layer_overhead_s:0.0

let test_profile_monotone_in_speed () =
  let g = Zoo.by_name "alexnet" in
  Alcotest.(check bool) "slower processor, higher latency" true
    (Profile.total_latency perf_slow g > Profile.total_latency perf_fast g)

let test_profile_range_additive () =
  let g = Zoo.by_name "resnet18" in
  let n = Graph.n_nodes g in
  let whole = Profile.total_latency perf_fast g in
  let split =
    Profile.range_latency perf_fast g ~lo:0 ~hi:(n / 2)
    +. Profile.range_latency perf_fast g ~lo:(n / 2) ~hi:n
  in
  Alcotest.(check (float 1e-9)) "ranges compose" whole split

let test_profile_overhead () =
  let g = Zoo.by_name "alexnet" in
  let with_oh = Profile.perf ~flops_per_s:1e12 ~mem_bytes_per_s:1e11 ~layer_overhead_s:0.001 in
  let diff = Profile.total_latency with_oh g -. Profile.total_latency perf_fast g in
  (* The input placeholder carries no overhead. *)
  Alcotest.(check (float 1e-9)) "overhead = (n_layers - 1) * oh"
    (0.001 *. float_of_int (Graph.n_nodes g - 1))
    diff

let test_profile_compute_bound () =
  let g =
    Graph.sequential ~name:"convy" ~input:(fm ~c:64 ~h:56 ~w:56)
      [ (None, false, Layer.Conv { out_c = 64; kernel = 3; stride = 1; pad = 1; groups = 1 }) ]
  in
  let p = Profile.perf ~flops_per_s:1e9 ~mem_bytes_per_s:1e15 ~layer_overhead_s:0.0 in
  let expected = Graph.node_flops g 1 /. 1e9 in
  Alcotest.(check (float 1e-9)) "flop bound" expected (Profile.layer_latency p g 1)

let test_profile_memory_bound () =
  let g =
    Graph.sequential ~name:"reluy" ~input:(fm ~c:64 ~h:56 ~w:56) [ (None, false, Layer.Relu) ]
  in
  let p = Profile.perf ~flops_per_s:1e15 ~mem_bytes_per_s:1e9 ~layer_overhead_s:0.0 in
  let expected = Profile.layer_bytes_touched g 1 /. 1e9 in
  Alcotest.(check (float 1e-9)) "memory bound" expected (Profile.layer_latency p g 1)

let prop_cut_transfer_nonneg =
  qtest "cut transfer bytes are positive strictly inside the graph"
    QCheck.(int_range 0 100)
    (fun k ->
      let g = Zoo.by_name "resnet18" in
      let k = min k (Graph.n_nodes g) in
      let b = Graph.cut_transfer_bytes g k in
      if k = Graph.n_nodes g then b = 0.0 else b > 0.0)

let prop_prefix_monotone =
  qtest "prefix flops grow with the cut"
    QCheck.(pair (int_range 0 60) (int_range 0 60))
    (fun (a, b) ->
      let g = Zoo.by_name "mobilenet_v1" in
      let n = Graph.n_nodes g in
      let a = min a n and b = min b n in
      let lo = min a b and hi = max a b in
      Graph.prefix_flops g lo <= Graph.prefix_flops g hi +. 1e-6)

(* ---------- Serialize ---------- *)

let graphs_equivalent (a : Graph.t) (b : Graph.t) =
  a.Graph.name = b.Graph.name
  && Shape.equal a.Graph.input_shape b.Graph.input_shape
  && Graph.n_nodes a = Graph.n_nodes b
  && a.Graph.output = b.Graph.output
  && Array.for_all2
       (fun (x : Graph.node) (y : Graph.node) ->
         x.Graph.node_name = y.Graph.node_name
         && x.Graph.layer = y.Graph.layer
         && x.Graph.preds = y.Graph.preds
         && x.Graph.exitable = y.Graph.exitable)
       a.Graph.nodes b.Graph.nodes

let test_serialize_roundtrip_zoo () =
  List.iter
    (fun g ->
      match Serialize.of_string (Serialize.to_string g) with
      | Error e -> Alcotest.fail (g.Graph.name ^ ": " ^ e)
      | Ok g' ->
          Alcotest.(check bool) (g.Graph.name ^ " round-trips") true (graphs_equivalent g g');
          Alcotest.(check (float 1.0)) "same flops" (Graph.total_flops g) (Graph.total_flops g'))
    (Zoo.all ())

let test_serialize_file_roundtrip () =
  let g = Zoo.resnet18 () in
  let path = Filename.temp_file "es_model" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serialize.save g ~path;
      match Serialize.load ~path with
      | Ok g' -> Alcotest.(check bool) "file round-trip" true (graphs_equivalent g g')
      | Error e -> Alcotest.fail e)

let test_serialize_tolerates_comments () =
  let text = Serialize.to_string (Zoo.alexnet ()) in
  let with_noise = "# a comment\n\n" ^ text ^ "\n# trailing\n" in
  match Serialize.of_string with_noise with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_serialize_rejects_garbage () =
  let bad input expect =
    match Serialize.of_string input with
    | Ok _ -> Alcotest.fail ("accepted: " ^ expect)
    | Error _ -> ()
  in
  bad "" "empty document";
  bad "input 3x4x5\n" "missing model header";
  bad "model m\ninput banana\n" "bad shape";
  bad "model m\ninput 3x4x5\nnode 1 x warp preds=0\noutput 1\n" "unknown layer";
  bad "model m\ninput 3x4x5\nnode 5 x relu preds=0\noutput 5\n" "non-sequential id";
  bad "model m\ninput 3x4x5\nnode 1 x relu preds=7\noutput 1\n" "dangling predecessor";
  bad "model m\ninput 3x4x5\nnode 1 x conv out_c=4 k=9 s=1 p=0 g=1 preds=0\n" "window too large"

let test_serialize_preserves_semantics () =
  (* A parsed graph must behave identically under surgery-relevant queries. *)
  let g = Zoo.mobilenet_v2 () in
  match Serialize.of_string (Serialize.to_string g) with
  | Error e -> Alcotest.fail e
  | Ok g' ->
      Alcotest.(check (list int)) "same exit candidates" (Graph.exit_candidate_ids g)
        (Graph.exit_candidate_ids g');
      List.iter
        (fun k ->
          Alcotest.(check (float 0.5)) "same cut transfer"
            (Graph.cut_transfer_bytes g k)
            (Graph.cut_transfer_bytes g' k))
        [ 0; 10; 50; 100 ]

(* Random chain-model generator for serializer fuzzing: a conv/pool/relu/bn
   stack that always type-checks (same-pad convs, halving pools guarded by
   size). *)
let random_chain seed =
  let rng = Es_util.Prng.create seed in
  let b, x = Graph.Builder.create ~name:"fuzz" ~input:(fm ~c:3 ~h:32 ~w:32) in
  let rec go prev h n =
    if n = 0 then prev
    else begin
      let prev, h =
        match Es_util.Prng.int rng 5 with
        | 0 ->
            let out_c = 1 + Es_util.Prng.int rng 32 in
            ( Graph.Builder.add b
                (Layer.Conv { out_c; kernel = 3; stride = 1; pad = 1; groups = 1 })
                [ prev ],
              h )
        | 1 when h >= 4 ->
            (Graph.Builder.add b (Layer.Pool { kind = Layer.Max; kernel = 2; stride = 2; pad = 0 }) [ prev ], h / 2)
        | 2 -> (Graph.Builder.add b ~exitable:(Es_util.Prng.bool rng) Layer.Relu [ prev ], h)
        | 3 -> (Graph.Builder.add b Layer.Batch_norm [ prev ], h)
        | _ -> (Graph.Builder.add b Layer.Relu [ prev ], h)
      in
      go prev h (n - 1)
    end
  in
  let last = go x 32 (3 + Es_util.Prng.int rng 12) in
  let pool = Graph.Builder.add b (Layer.Global_pool Layer.Avg) [ last ] in
  let flat = Graph.Builder.add b Layer.Flatten [ pool ] in
  let fc = Graph.Builder.add b (Layer.Fc { out_features = 10 }) [ flat ] in
  Graph.Builder.finish ~output:fc b

let prop_serialize_roundtrip_random =
  qtest ~count:60 "serializer round-trips random chain models" QCheck.(int_bound 100_000)
    (fun seed ->
      let g = random_chain seed in
      match Serialize.of_string (Serialize.to_string g) with
      | Error _ -> false
      | Ok g' ->
          graphs_equivalent g g'
          && Float.abs (Graph.total_flops g -. Graph.total_flops g') < 1.0)

let () =
  Alcotest.run "es_dnn"
    [
      ( "shape",
        [
          Alcotest.test_case "basics" `Quick test_shape_basics;
          Alcotest.test_case "conv out" `Quick test_shape_conv_out;
          Alcotest.test_case "errors" `Quick test_shape_errors;
          Alcotest.test_case "scale channels" `Quick test_shape_scale_channels;
        ] );
      ( "layer",
        [
          Alcotest.test_case "conv flops" `Quick test_layer_conv_flops;
          Alcotest.test_case "depthwise flops" `Quick test_layer_depthwise_flops;
          Alcotest.test_case "fc" `Quick test_layer_fc;
          Alcotest.test_case "add/concat" `Quick test_layer_add_concat;
          Alcotest.test_case "pool & misc" `Quick test_layer_pool_and_misc;
        ] );
      ( "graph",
        [
          Alcotest.test_case "build & validate" `Quick test_graph_build_validate;
          Alcotest.test_case "builder errors" `Quick test_graph_builder_errors;
          Alcotest.test_case "flops decompose" `Quick test_graph_flops_decompose;
          Alcotest.test_case "cut transfer" `Quick test_graph_cut_transfer;
          Alcotest.test_case "shared activation" `Quick test_graph_cut_shared_activation;
          Alcotest.test_case "successors" `Quick test_graph_successors;
          Alcotest.test_case "scale width" `Quick test_scale_width;
          Alcotest.test_case "scale width on zoo" `Quick test_scale_width_zoo;
          prop_cut_transfer_nonneg;
          prop_prefix_monotone;
        ] );
      ( "zoo",
        [
          Alcotest.test_case "all valid" `Quick test_zoo_all_valid;
          Alcotest.test_case "published costs" `Quick test_zoo_published_costs;
          Alcotest.test_case "exits exist" `Quick test_zoo_exits_exist;
          Alcotest.test_case "by_name" `Quick test_zoo_by_name;
          Alcotest.test_case "classifier outputs" `Quick test_zoo_classifier_output;
          Alcotest.test_case "detector output" `Quick test_zoo_detector_output;
        ] );
      ( "serialize",
        [
          Alcotest.test_case "zoo round-trip" `Quick test_serialize_roundtrip_zoo;
          Alcotest.test_case "file round-trip" `Quick test_serialize_file_roundtrip;
          Alcotest.test_case "comments tolerated" `Quick test_serialize_tolerates_comments;
          Alcotest.test_case "rejects garbage" `Quick test_serialize_rejects_garbage;
          Alcotest.test_case "preserves semantics" `Quick test_serialize_preserves_semantics;
          prop_serialize_roundtrip_random;
        ] );
      ( "profile",
        [
          Alcotest.test_case "monotone in speed" `Quick test_profile_monotone_in_speed;
          Alcotest.test_case "ranges compose" `Quick test_profile_range_additive;
          Alcotest.test_case "overhead" `Quick test_profile_overhead;
          Alcotest.test_case "compute bound" `Quick test_profile_compute_bound;
          Alcotest.test_case "memory bound" `Quick test_profile_memory_bound;
        ] );
    ]
