open Es_edge
open Es_workload

let cluster = lazy (Scenario.build Scenario.default)

(* ---------- Profiles ---------- *)

let test_constant () =
  Alcotest.(check (float 0.0)) "constant" 2.5 (Profiles.constant 2.5 17.0)

let test_step_burst () =
  let p = Profiles.step_burst ~start_s:10.0 ~stop_s:20.0 ~factor:4.0 in
  Alcotest.(check (float 0.0)) "before" 1.0 (p 5.0);
  Alcotest.(check (float 0.0)) "inside" 4.0 (p 15.0);
  Alcotest.(check (float 0.0)) "at start (inclusive)" 4.0 (p 10.0);
  Alcotest.(check (float 0.0)) "after" 1.0 (p 20.0)

let test_diurnal () =
  let p = Profiles.diurnal ~period_s:100.0 ~amplitude:0.5 in
  Alcotest.(check (float 1e-9)) "at zero" 1.0 (p 0.0);
  Alcotest.(check (float 1e-9)) "quarter period is the crest" 1.5 (p 25.0);
  Alcotest.(check bool) "floored" true (Profiles.diurnal ~period_s:100.0 ~amplitude:5.0 75.0 >= 0.05)

let test_square_wave () =
  let p = Profiles.square_wave ~period_s:10.0 ~high:3.0 ~low:0.5 in
  Alcotest.(check (float 0.0)) "first half high" 3.0 (p 2.0);
  Alcotest.(check (float 0.0)) "second half low" 0.5 (p 7.0);
  Alcotest.(check (float 0.0)) "periodic" 3.0 (p 12.0)

let test_ramp () =
  let p = Profiles.ramp ~until_s:10.0 ~peak:3.0 in
  Alcotest.(check (float 1e-9)) "start" 1.0 (p 0.0);
  Alcotest.(check (float 1e-9)) "midway" 2.0 (p 5.0);
  Alcotest.(check (float 1e-9)) "flat after" 3.0 (p 50.0)

(* ---------- Traces ---------- *)

let test_poisson_sorted_and_in_range () =
  let c = Lazy.force cluster in
  let tr = Traces.poisson ~seed:1 ~duration_s:30.0 c in
  Alcotest.(check bool) "non-empty" true (Array.length tr > 0);
  Array.iteri
    (fun i (t, d) ->
      if i > 0 then Alcotest.(check bool) "sorted" true (fst tr.(i - 1) <= t);
      Alcotest.(check bool) "device valid" true (d >= 0 && d < Cluster.n_devices c);
      Alcotest.(check bool) "time valid" true (t >= 0.0 && t < 30.0))
    tr

let test_poisson_rate_matches () =
  let c = Lazy.force cluster in
  let duration = 400.0 in
  let tr = Traces.poisson ~seed:2 ~duration_s:duration c in
  let expected =
    Array.fold_left (fun acc (d : Cluster.device) -> acc +. d.Cluster.rate) 0.0 c.Cluster.devices
    *. duration
  in
  let got = float_of_int (Array.length tr) in
  Alcotest.(check bool)
    (Printf.sprintf "count %.0f within 10%% of %.0f" got expected)
    true
    (Float.abs (got -. expected) /. expected < 0.10)

let test_poisson_deterministic () =
  let c = Lazy.force cluster in
  let a = Traces.poisson ~seed:3 ~duration_s:10.0 c in
  let b = Traces.poisson ~seed:3 ~duration_s:10.0 c in
  Alcotest.(check int) "same length" (Array.length a) (Array.length b);
  Array.iteri (fun i (t, d) -> Alcotest.(check bool) "same events" true (b.(i) = (t, d))) a

let test_piecewise_burst_density () =
  let c = Lazy.force cluster in
  let profile = Profiles.step_burst ~start_s:50.0 ~stop_s:100.0 ~factor:5.0 in
  let tr = Traces.piecewise ~seed:4 ~duration_s:150.0 ~rate_profile:profile c in
  let count lo hi =
    Array.fold_left (fun acc (t, _) -> if t >= lo && t < hi then acc + 1 else acc) 0 tr
  in
  let before = count 0.0 50.0 and during = count 50.0 100.0 in
  Alcotest.(check bool)
    (Printf.sprintf "burst density %d >> baseline %d" during before)
    true
    (float_of_int during > 3.0 *. float_of_int before)

let test_merge () =
  let a = [| (1.0, 0); (3.0, 0) |] and b = [| (2.0, 1); (4.0, 1) |] in
  let m = Traces.merge [ a; b ] in
  Alcotest.(check int) "all events" 4 (Array.length m);
  Array.iteri (fun i (t, _) -> if i > 0 then Alcotest.(check bool) "sorted" true (fst m.(i - 1) <= t)) m

let test_csv_roundtrip () =
  let c = Lazy.force cluster in
  let tr = Traces.poisson ~seed:5 ~duration_s:10.0 c in
  let path = Filename.temp_file "es_trace" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Traces.save_csv tr ~path;
      match Traces.load_csv ~path with
      | Error e -> Alcotest.fail e
      | Ok tr' ->
          Alcotest.(check int) "same length" (Array.length tr) (Array.length tr');
          Array.iteri
            (fun i (t, d) ->
              let t', d' = tr'.(i) in
              Alcotest.(check int) "same device" d d';
              Alcotest.(check (float 1e-6)) "same time" t t')
            tr)

let test_csv_rejects_garbage () =
  let path = Filename.temp_file "es_trace" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "time_s,device\n1.0,0\nbanana\n";
      close_out oc;
      match Traces.load_csv ~path with
      | Ok _ -> Alcotest.fail "accepted malformed CSV"
      | Error e -> Alcotest.(check bool) "error names the line" true (String.length e > 0));
  match Traces.load_csv ~path:"/nonexistent/trace.csv" with
  | Ok _ -> Alcotest.fail "accepted missing file"
  | Error _ -> ()

(* ---------- Scenarios ---------- *)

let test_named_scenarios_build () =
  List.iter
    (fun n ->
      let c = Scenario.build (Scenarios.by_name n) in
      Alcotest.(check bool) (n ^ " has devices") true (Cluster.n_devices c > 0);
      Alcotest.(check bool) (n ^ " has servers") true (Cluster.n_servers c > 0))
    Scenarios.names;
  Alcotest.check_raises "unknown scenario" Not_found (fun () ->
      ignore (Scenarios.by_name "moon_base"))

let test_scenarios_distinct () =
  let ar = Scenario.build Scenarios.ar_assistant in
  let sc = Scenario.build Scenarios.smart_city in
  (* AR: tight deadlines; smart city: relaxed. *)
  let max_deadline c =
    Array.fold_left (fun acc (d : Cluster.device) -> Float.max acc d.Cluster.deadline) 0.0
      c.Cluster.devices
  in
  Alcotest.(check bool) "ar deadlines tighter" true (max_deadline ar < 0.15);
  Alcotest.(check bool) "smart-city deadlines looser" true (max_deadline sc > 0.15)

let () =
  Alcotest.run "es_workload"
    [
      ( "profiles",
        [
          Alcotest.test_case "constant" `Quick test_constant;
          Alcotest.test_case "step burst" `Quick test_step_burst;
          Alcotest.test_case "diurnal" `Quick test_diurnal;
          Alcotest.test_case "square wave" `Quick test_square_wave;
          Alcotest.test_case "ramp" `Quick test_ramp;
        ] );
      ( "traces",
        [
          Alcotest.test_case "sorted & in range" `Quick test_poisson_sorted_and_in_range;
          Alcotest.test_case "rate matches" `Quick test_poisson_rate_matches;
          Alcotest.test_case "deterministic" `Quick test_poisson_deterministic;
          Alcotest.test_case "burst density" `Quick test_piecewise_burst_density;
          Alcotest.test_case "merge" `Quick test_merge;
          Alcotest.test_case "csv round-trip" `Quick test_csv_roundtrip;
          Alcotest.test_case "csv rejects garbage" `Quick test_csv_rejects_garbage;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "named build" `Quick test_named_scenarios_build;
          Alcotest.test_case "distinct" `Quick test_scenarios_distinct;
        ] );
    ]
