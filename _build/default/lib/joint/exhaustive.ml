open Es_edge
open Es_surgery

type output = {
  decisions : Decision.t array option;
  objective : float;
  combinations : int;
  solve_time_s : float;
}

let solve ?(widths = Candidate.default_widths) ?(max_candidates_per_device = 6) cluster =
  let t0 = Sys.time () in
  let nd = Cluster.n_devices cluster and ns = Cluster.n_servers cluster in
  (* Subsample the Pareto frontier exactly the way the heuristic does
     (subsample first, then the accuracy filter), so that with the same cap
     the heuristic's plan grid is a subset of the exhaustive one and the
     measured optimality gap is meaningful. *)
  let cands =
    Array.init nd (fun i ->
        let dev = cluster.Cluster.devices.(i) in
        let all = Candidate.pareto_candidates ~widths dev.Cluster.model in
        let sub = Candidate.subsample max_candidates_per_device all in
        let acc_ok =
          List.filter
            (fun (p : Plan.t) -> p.Plan.accuracy >= dev.Cluster.accuracy_floor -. 1e-9)
            sub
        in
        let pool = if acc_ok = [] then sub else acc_ok in
        Array.of_list pool)
  in
  let total =
    Array.fold_left
      (fun acc c -> acc *. float_of_int (Array.length c) *. float_of_int ns)
      1.0 cands
  in
  if total > 2e6 then
    invalid_arg
      (Printf.sprintf "Exhaustive.solve: %.0f combinations exceed the 2e6 cap" total);
  let best_obj = ref Objective.infeasible in
  let best_ds = ref None in
  let combos = ref 0 in
  let assignment = Array.make nd 0 in
  let choice = Array.make nd 0 in
  let rec enumerate device =
    if device = nd then begin
      incr combos;
      let plans = Array.init nd (fun i -> cands.(i).(choice.(i))) in
      match Optimizer.best_allocation cluster ~assignment ~plans with
      | None -> ()
      | Some ds ->
          let obj = Objective.of_decisions cluster ds in
          if obj < !best_obj then begin
            best_obj := obj;
            best_ds := Some ds
          end
    end
    else
      for c = 0 to Array.length cands.(device) - 1 do
        choice.(device) <- c;
        let plan = cands.(device).(c) in
        if Plan.is_device_only plan then begin
          (* The server choice is inert for local plans: fix it to 0. *)
          assignment.(device) <- 0;
          enumerate (device + 1)
        end
        else
          for s = 0 to ns - 1 do
            assignment.(device) <- s;
            enumerate (device + 1)
          done
      done
  in
  enumerate 0;
  {
    decisions = !best_ds;
    objective = !best_obj;
    combinations = !combos;
    solve_time_s = Sys.time () -. t0;
  }
