open Es_edge

type verdict = { required : float; feasible : bool; solves : int }

(* Queueing-aware zero-miss test: the analytic latency alone would declare
   arbitrarily high loads feasible (it has no congestion term). *)
let zero_miss ?config cluster =
  let out = Optimizer.solve ?config cluster in
  Objective.mm1_misses cluster out.Optimizer.decisions = 0

(* Find the smallest x in [lo, hi] with ok x (monotone), to ~2% relative
   tolerance; counts evaluations. *)
let bisect_min ~lo ~hi ok =
  let solves = ref 0 in
  let eval x =
    incr solves;
    ok x
  in
  if eval lo then { required = lo; feasible = true; solves = !solves }
  else if not (eval hi) then { required = hi; feasible = false; solves = !solves }
  else begin
    let lo = ref lo and hi = ref hi in
    while !hi /. !lo > 1.02 do
      let mid = sqrt (!lo *. !hi) in
      if eval mid then hi := mid else lo := mid
    done;
    { required = !hi; feasible = true; solves = !solves }
  end

(* The dual direction: the largest x with ok x. *)
let bisect_max ~lo ~hi ok =
  let solves = ref 0 in
  let eval x =
    incr solves;
    ok x
  in
  if not (eval lo) then { required = lo; feasible = false; solves = !solves }
  else if eval hi then { required = hi; feasible = true; solves = !solves }
  else begin
    let lo = ref lo and hi = ref hi in
    while !hi /. !lo > 1.02 do
      let mid = sqrt (!lo *. !hi) in
      if eval mid then lo := mid else hi := mid
    done;
    { required = !lo; feasible = true; solves = !solves }
  end

let required_bandwidth_mbps ?config ?(lo_mbps = 5.0) ?(hi_mbps = 2000.0) spec =
  bisect_min ~lo:lo_mbps ~hi:hi_mbps (fun mbps ->
      zero_miss ?config (Scenario.build (Scenario.with_ap_mbps mbps spec)))

let scale_servers spec factor =
  {
    spec with
    Scenario.servers =
      List.map (fun (p, mbps) -> (Processor.scaled p factor, mbps)) spec.Scenario.servers;
  }

let required_server_scale ?config ?(lo = 0.05) ?(hi = 16.0) spec =
  bisect_min ~lo ~hi (fun f -> zero_miss ?config (Scenario.build (scale_servers spec f)))

let max_supported_load ?config ?(hi = 32.0) spec =
  let base = Scenario.build spec in
  bisect_max ~lo:0.05 ~hi (fun m -> zero_miss ?config (Online.scale_rates base m))
