lib/joint/online.mli: Es_edge Es_sim Optimizer
