lib/joint/objective.mli: Es_edge
