lib/joint/optimizer.mli: Es_alloc Es_edge Es_surgery
