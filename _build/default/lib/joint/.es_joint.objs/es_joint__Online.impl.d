lib/joint/online.ml: Array Cluster Decision Es_edge Es_sim Es_workload Float List Optimizer
