lib/joint/optimizer.ml: Array Assign Candidate Cluster Decision Es_alloc Es_dnn Es_edge Es_surgery Es_util Float Latency Link List Objective Plan Policy Precision Processor Sys
