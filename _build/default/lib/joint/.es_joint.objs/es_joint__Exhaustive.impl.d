lib/joint/exhaustive.ml: Array Candidate Cluster Decision Es_edge Es_surgery List Objective Optimizer Plan Printf Sys
