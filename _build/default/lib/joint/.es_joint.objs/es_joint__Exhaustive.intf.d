lib/joint/exhaustive.mli: Es_edge
