lib/joint/planner.ml: Es_edge List Objective Online Optimizer Processor Scenario
