lib/joint/objective.ml: Array Cluster Decision Es_edge Float Latency
