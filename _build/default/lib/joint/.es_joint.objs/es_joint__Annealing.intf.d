lib/joint/annealing.mli: Es_edge Es_surgery
