lib/joint/annealing.ml: Array Candidate Cluster Decision Es_edge Es_surgery Es_util Float Latency List Objective Optimizer Plan Precision Sys
