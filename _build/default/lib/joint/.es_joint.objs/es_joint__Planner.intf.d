lib/joint/planner.mli: Es_edge Optimizer
