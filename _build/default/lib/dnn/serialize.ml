let shape_to_string = function
  | Shape.Map { c; h; w } -> Printf.sprintf "%dx%dx%d" c h w
  | Shape.Vec n -> Printf.sprintf "vec=%d" n

let shape_of_string s =
  match String.split_on_char '=' s with
  | [ "vec"; n ] -> (
      match int_of_string_opt n with
      | Some n when n > 0 -> Ok (Shape.vec n)
      | _ -> Error "bad vector size")
  | _ -> (
      match String.split_on_char 'x' s with
      | [ c; h; w ] -> (
          match (int_of_string_opt c, int_of_string_opt h, int_of_string_opt w) with
          | Some c, Some h, Some w when c > 0 && h > 0 && w > 0 -> Ok (Shape.map ~c ~h ~w)
          | _ -> Error "bad map dimensions")
      | _ -> Error "expected CxHxW or vec=N")

let pool_kind_name = function Layer.Max -> "max" | Layer.Avg -> "avg"

let layer_to_string = function
  | Layer.Input -> "input"
  | Layer.Conv { out_c; kernel; stride; pad; groups } ->
      Printf.sprintf "conv out_c=%d k=%d s=%d p=%d g=%d" out_c kernel stride pad groups
  | Layer.Fc { out_features } -> Printf.sprintf "fc out=%d" out_features
  | Layer.Pool { kind; kernel; stride; pad } ->
      Printf.sprintf "pool kind=%s k=%d s=%d p=%d" (pool_kind_name kind) kernel stride pad
  | Layer.Global_pool kind -> Printf.sprintf "gpool kind=%s" (pool_kind_name kind)
  | Layer.Relu -> "relu"
  | Layer.Batch_norm -> "bn"
  | Layer.Add -> "add"
  | Layer.Concat -> "concat"
  | Layer.Flatten -> "flatten"
  | Layer.Softmax -> "softmax"

let sanitize_name n =
  String.map (fun c -> if c = ' ' || c = '\t' then '_' else c) n

let to_string (g : Graph.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "model %s\n" (sanitize_name g.Graph.name));
  Buffer.add_string buf (Printf.sprintf "input %s\n" (shape_to_string g.Graph.input_shape));
  Array.iter
    (fun (node : Graph.node) ->
      if node.Graph.id > 0 then begin
        let preds =
          String.concat "," (List.map string_of_int (Array.to_list node.Graph.preds))
        in
        Buffer.add_string buf
          (Printf.sprintf "node %d %s %s%s preds=%s\n" node.Graph.id
             (sanitize_name node.Graph.node_name)
             (layer_to_string node.Graph.layer)
             (if node.Graph.exitable then " exit" else "")
             preds)
      end)
    g.Graph.nodes;
  Buffer.add_string buf (Printf.sprintf "output %d\n" g.Graph.output);
  Buffer.contents buf

(* ---------- parsing ---------- *)

let kv_int kvs key =
  match List.assoc_opt key kvs with
  | Some v -> (
      match int_of_string_opt v with Some i -> Ok i | None -> Error (key ^ " not an int"))
  | None -> Error ("missing " ^ key)

let kv_pool_kind kvs =
  match List.assoc_opt "kind" kvs with
  | Some "max" -> Ok Layer.Max
  | Some "avg" -> Ok Layer.Avg
  | Some other -> Error ("unknown pool kind " ^ other)
  | None -> Error "missing kind"

let ( let* ) = Result.bind

let parse_layer kind kvs =
  match kind with
  | "conv" ->
      let* out_c = kv_int kvs "out_c" in
      let* kernel = kv_int kvs "k" in
      let* stride = kv_int kvs "s" in
      let* pad = kv_int kvs "p" in
      let* groups = kv_int kvs "g" in
      Ok (Layer.Conv { out_c; kernel; stride; pad; groups })
  | "fc" ->
      let* out_features = kv_int kvs "out" in
      Ok (Layer.Fc { out_features })
  | "pool" ->
      let* kind = kv_pool_kind kvs in
      let* kernel = kv_int kvs "k" in
      let* stride = kv_int kvs "s" in
      let* pad = kv_int kvs "p" in
      Ok (Layer.Pool { kind; kernel; stride; pad })
  | "gpool" ->
      let* kind = kv_pool_kind kvs in
      Ok (Layer.Global_pool kind)
  | "relu" -> Ok Layer.Relu
  | "bn" -> Ok Layer.Batch_norm
  | "add" -> Ok Layer.Add
  | "concat" -> Ok Layer.Concat
  | "flatten" -> Ok Layer.Flatten
  | "softmax" -> Ok Layer.Softmax
  | other -> Error ("unknown layer kind " ^ other)

let parse_preds s =
  let parts = String.split_on_char ',' s in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
        match int_of_string_opt p with
        | Some i -> go (i :: acc) rest
        | None -> Error ("bad predecessor " ^ p))
  in
  go [] parts

(* A node line's tokens after id and name: layer kind, key=value args, an
   optional bare "exit" flag, and the final preds=... *)
let parse_node_tokens tokens =
  match tokens with
  | kind :: rest ->
      let exitable = List.mem "exit" rest in
      let rest = List.filter (fun t -> t <> "exit") rest in
      let preds, kvs =
        List.partition (fun t -> String.length t > 6 && String.sub t 0 6 = "preds=") rest
      in
      let kvs =
        List.filter_map
          (fun t ->
            match String.index_opt t '=' with
            | Some i -> Some (String.sub t 0 i, String.sub t (i + 1) (String.length t - i - 1))
            | None -> None)
          kvs
      in
      let* layer = parse_layer kind kvs in
      let* preds =
        match preds with
        | [ p ] -> parse_preds (String.sub p 6 (String.length p - 6))
        | _ -> Error "missing preds="
      in
      Ok (layer, exitable, preds)
  | [] -> Error "empty node body"

let of_string text =
  let lines = String.split_on_char '\n' text in
  let err line_no msg = Error (Printf.sprintf "line %d: %s" line_no msg) in
  let state = ref `Expect_model in
  let builder = ref None in
  let output = ref None in
  let rec go line_no = function
    | [] -> (
        match (!builder, !output) with
        | Some b, out -> (
            match Graph.Builder.finish ?output:out b with
            | g -> Ok g
            | exception Invalid_argument m -> Error ("finish: " ^ m))
        | None, _ -> Error "missing model header")
    | line :: rest -> (
        let line = String.trim line in
        if line = "" || String.length line > 0 && line.[0] = '#' then go (line_no + 1) rest
        else begin
          let tokens =
            String.split_on_char ' ' line |> List.filter (fun t -> t <> "")
          in
          match (!state, tokens) with
          | `Expect_model, [ "model"; name ] ->
              state := `Expect_input name;
              go (line_no + 1) rest
          | `Expect_model, _ -> err line_no "expected: model <name>"
          | `Expect_input name, [ "input"; shape ] -> (
              match shape_of_string shape with
              | Ok input ->
                  let b, _ = Graph.Builder.create ~name ~input in
                  builder := Some b;
                  state := `Nodes;
                  go (line_no + 1) rest
              | Error m -> err line_no m)
          | `Expect_input _, _ -> err line_no "expected: input <shape>"
          | `Nodes, "node" :: id :: name :: body -> (
              match (int_of_string_opt id, !builder) with
              | None, _ -> err line_no "bad node id"
              | _, None -> err line_no "node before input"
              | Some id, Some b -> (
                  match parse_node_tokens body with
                  | Error m -> err line_no m
                  | Ok (layer, exitable, preds) -> (
                      match Graph.Builder.add b ~name ~exitable layer preds with
                      | got when got = id -> go (line_no + 1) rest
                      | _ -> err line_no "non-sequential node id"
                      | exception Invalid_argument m -> err line_no m)))
          | `Nodes, [ "output"; id ] -> (
              match int_of_string_opt id with
              | Some id ->
                  output := Some id;
                  go (line_no + 1) rest
              | None -> err line_no "bad output id")
          | `Nodes, _ -> err line_no "expected: node ... or output <id>"
        end)
  in
  go 1 lines

let save g ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))

let load ~path =
  match open_in path with
  | exception Sys_error m -> Error m
  | ic ->
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      of_string text
