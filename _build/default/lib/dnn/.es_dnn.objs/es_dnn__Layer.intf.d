lib/dnn/layer.mli: Format Shape
