lib/dnn/graph.mli: Format Layer Shape
