lib/dnn/zoo.mli: Graph
