lib/dnn/serialize.mli: Graph
