lib/dnn/layer.ml: Float Format List Printf Shape
