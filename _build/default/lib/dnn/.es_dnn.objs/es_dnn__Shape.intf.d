lib/dnn/shape.mli: Format
