lib/dnn/profile.mli: Graph
