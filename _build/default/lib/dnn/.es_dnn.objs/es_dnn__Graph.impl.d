lib/dnn/graph.ml: Array Format Layer List Printf Shape
