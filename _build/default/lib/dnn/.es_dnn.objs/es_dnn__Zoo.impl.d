lib/dnn/zoo.ml: Graph Layer List Shape
