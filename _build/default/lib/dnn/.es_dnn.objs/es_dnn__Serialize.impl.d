lib/dnn/serialize.ml: Array Buffer Fun Graph Layer List Printf Result Shape String
