lib/dnn/shape.ml: Float Format
