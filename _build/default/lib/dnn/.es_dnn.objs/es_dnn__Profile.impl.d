lib/dnn/profile.ml: Array Float Graph Hashtbl Layer Shape
