(** Per-processor latency prediction.

    A processor is summarized by a roofline-style performance model: layer
    execution time is the max of its compute time (FLOPs / throughput) and
    its memory time (bytes moved / bandwidth), plus a fixed per-layer
    dispatch overhead.  This is the standard substitute for on-device layer
    profiling (Neurosurgeon builds exactly such per-layer latency predictors)
    and preserves the property surgery decisions depend on: compute-heavy
    layers scale with device FLOPS while cheap layers are overhead/bandwidth
    bound. *)

type perf = {
  flops_per_s : float;  (** sustained dense-compute throughput *)
  mem_bytes_per_s : float;  (** memory bandwidth *)
  layer_overhead_s : float;  (** fixed per-layer dispatch cost *)
}

val perf : flops_per_s:float -> mem_bytes_per_s:float -> layer_overhead_s:float -> perf
(** @raise Invalid_argument on non-positive throughput or bandwidth. *)

val layer_latency : perf -> Graph.t -> int -> float
(** Seconds to execute one node of the graph on the processor. *)

val range_latency : perf -> Graph.t -> lo:int -> hi:int -> float
(** Seconds to execute nodes with ids in [lo, hi) sequentially. *)

val total_latency : perf -> Graph.t -> float
(** Whole-model single-inference latency. *)

val layer_bytes_touched : Graph.t -> int -> float
(** Bytes read + written by a node (inputs, output, parameters; fp32). *)
