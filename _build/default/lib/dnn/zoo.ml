let conv ?(groups = 1) ~k ~s ~p out_c = Layer.Conv { out_c; kernel = k; stride = s; pad = p; groups }
let maxpool ~k ~s ?(p = 0) () = Layer.Pool { kind = Layer.Max; kernel = k; stride = s; pad = p }

(* Chain helpers over a builder: each returns the id of its last node. *)
let conv_relu b ?exitable ~k ~s ~p out_c prev =
  let c = Graph.Builder.add b (conv ~k ~s ~p out_c) [ prev ] in
  Graph.Builder.add b ?exitable Layer.Relu [ c ]

let conv_bn_relu b ?exitable ?(groups = 1) ~k ~s ~p out_c prev =
  let c = Graph.Builder.add b (conv ~groups ~k ~s ~p out_c) [ prev ] in
  let n = Graph.Builder.add b Layer.Batch_norm [ c ] in
  Graph.Builder.add b ?exitable Layer.Relu [ n ]

let conv_bn b ?(groups = 1) ~k ~s ~p out_c prev =
  let c = Graph.Builder.add b (conv ~groups ~k ~s ~p out_c) [ prev ] in
  Graph.Builder.add b Layer.Batch_norm [ c ]

let classifier_head b ?(hidden = []) ~classes prev =
  let pool = Graph.Builder.add b (Layer.Global_pool Layer.Avg) [ prev ] in
  let flat = Graph.Builder.add b Layer.Flatten [ pool ] in
  let last =
    List.fold_left
      (fun acc h ->
        let fc = Graph.Builder.add b (Layer.Fc { out_features = h }) [ acc ] in
        Graph.Builder.add b Layer.Relu [ fc ])
      flat hidden
  in
  let logits = Graph.Builder.add b ~name:"logits" (Layer.Fc { out_features = classes }) [ last ] in
  Graph.Builder.add b Layer.Softmax [ logits ]

let imagenet_input = Shape.map ~c:3 ~h:224 ~w:224

let alexnet () =
  let b, x = Graph.Builder.create ~name:"alexnet" ~input:imagenet_input in
  let x = conv_relu b ~k:11 ~s:4 ~p:2 96 x in
  let x = Graph.Builder.add b ~exitable:true (maxpool ~k:3 ~s:2 ()) [ x ] in
  let x = conv_relu b ~k:5 ~s:1 ~p:2 256 x in
  let x = Graph.Builder.add b ~exitable:true (maxpool ~k:3 ~s:2 ()) [ x ] in
  let x = conv_relu b ~k:3 ~s:1 ~p:1 384 x in
  let x = conv_relu b ~k:3 ~s:1 ~p:1 384 x in
  let x = conv_relu b ~k:3 ~s:1 ~p:1 256 x in
  let x = Graph.Builder.add b ~exitable:true (maxpool ~k:3 ~s:2 ()) [ x ] in
  let x = Graph.Builder.add b Layer.Flatten [ x ] in
  let x = Graph.Builder.add b (Layer.Fc { out_features = 4096 }) [ x ] in
  let x = Graph.Builder.add b Layer.Relu [ x ] in
  let x = Graph.Builder.add b (Layer.Fc { out_features = 4096 }) [ x ] in
  let x = Graph.Builder.add b ~exitable:true Layer.Relu [ x ] in
  let x = Graph.Builder.add b ~name:"logits" (Layer.Fc { out_features = 1000 }) [ x ] in
  let _ = Graph.Builder.add b Layer.Softmax [ x ] in
  Graph.Builder.finish b

let vgg16 () =
  let b, x = Graph.Builder.create ~name:"vgg16" ~input:imagenet_input in
  let block x widths =
    let x = List.fold_left (fun acc w -> conv_relu b ~k:3 ~s:1 ~p:1 w acc) x widths in
    Graph.Builder.add b ~exitable:true (maxpool ~k:2 ~s:2 ()) [ x ]
  in
  let x = block x [ 64; 64 ] in
  let x = block x [ 128; 128 ] in
  let x = block x [ 256; 256; 256 ] in
  let x = block x [ 512; 512; 512 ] in
  let x = block x [ 512; 512; 512 ] in
  let x = Graph.Builder.add b Layer.Flatten [ x ] in
  let x = Graph.Builder.add b (Layer.Fc { out_features = 4096 }) [ x ] in
  let x = Graph.Builder.add b Layer.Relu [ x ] in
  let x = Graph.Builder.add b (Layer.Fc { out_features = 4096 }) [ x ] in
  let x = Graph.Builder.add b Layer.Relu [ x ] in
  let x = Graph.Builder.add b ~name:"logits" (Layer.Fc { out_features = 1000 }) [ x ] in
  let _ = Graph.Builder.add b Layer.Softmax [ x ] in
  Graph.Builder.finish b

(* Basic residual block (ResNet-18/34): two 3x3 convs; stride/width change
   goes through a projected shortcut. *)
let basic_block b ~stride ~out_c ?(exitable = false) x =
  let main = conv_bn_relu b ~k:3 ~s:stride ~p:1 out_c x in
  let main = conv_bn b ~k:3 ~s:1 ~p:1 out_c main in
  let shortcut = if stride <> 1 then conv_bn b ~k:1 ~s:stride ~p:0 out_c x else x in
  let add = Graph.Builder.add b Layer.Add [ main; shortcut ] in
  Graph.Builder.add b ~exitable Layer.Relu [ add ]

let resnet_small ~name ~stage_sizes () =
  let b, x = Graph.Builder.create ~name ~input:imagenet_input in
  let x = conv_bn_relu b ~k:7 ~s:2 ~p:3 64 x in
  let x = Graph.Builder.add b (maxpool ~k:3 ~s:2 ~p:1 ()) [ x ] in
  let widths = [ 64; 128; 256; 512 ] in
  let x =
    List.fold_left2
      (fun x n_blocks (stage_idx, out_c) ->
        let rec blocks x i =
          if i >= n_blocks then x
          else begin
            let stride = if i = 0 && stage_idx > 0 then 2 else 1 in
            let exitable = i = n_blocks - 1 in
            blocks (basic_block b ~stride ~out_c ~exitable x) (i + 1)
          end
        in
        blocks x 0)
      x stage_sizes
      (List.mapi (fun i w -> (i, w)) widths)
  in
  classifier_head b ~classes:1000 x |> ignore;
  Graph.Builder.finish b

let resnet18 () = resnet_small ~name:"resnet18" ~stage_sizes:[ 2; 2; 2; 2 ] ()
let resnet34 () = resnet_small ~name:"resnet34" ~stage_sizes:[ 3; 4; 6; 3 ] ()

(* Bottleneck block (ResNet-50): 1x1 reduce, 3x3, 1x1 expand (4x). *)
let bottleneck_block b ~stride ~mid_c ?(exitable = false) ~project x =
  let out_c = mid_c * 4 in
  let main = conv_bn_relu b ~k:1 ~s:1 ~p:0 mid_c x in
  let main = conv_bn_relu b ~k:3 ~s:stride ~p:1 mid_c main in
  let main = conv_bn b ~k:1 ~s:1 ~p:0 out_c main in
  let shortcut = if project then conv_bn b ~k:1 ~s:stride ~p:0 out_c x else x in
  let add = Graph.Builder.add b Layer.Add [ main; shortcut ] in
  Graph.Builder.add b ~exitable Layer.Relu [ add ]

let resnet50 () =
  let b, x = Graph.Builder.create ~name:"resnet50" ~input:imagenet_input in
  let x = conv_bn_relu b ~k:7 ~s:2 ~p:3 64 x in
  let x = Graph.Builder.add b (maxpool ~k:3 ~s:2 ~p:1 ()) [ x ] in
  let stages = [ (3, 64); (4, 128); (6, 256); (3, 512) ] in
  let x =
    List.fold_left
      (fun x (stage_idx, (n_blocks, mid_c)) ->
        let rec blocks x i =
          if i >= n_blocks then x
          else begin
            let stride = if i = 0 && stage_idx > 0 then 2 else 1 in
            let project = i = 0 in
            let exitable = i = n_blocks - 1 in
            blocks (bottleneck_block b ~stride ~mid_c ~exitable ~project x) (i + 1)
          end
        in
        blocks x 0)
      x
      (List.mapi (fun i s -> (i, s)) stages)
  in
  classifier_head b ~classes:1000 x |> ignore;
  Graph.Builder.finish b

let mobilenet_v1 () =
  let b, x = Graph.Builder.create ~name:"mobilenet_v1" ~input:imagenet_input in
  let dw_sep ~stride ~out_c ?(exitable = false) (x, in_c) =
    let dw = conv_bn_relu b ~groups:in_c ~k:3 ~s:stride ~p:1 in_c x in
    let pw = conv_bn_relu b ~exitable ~k:1 ~s:1 ~p:0 out_c dw in
    (pw, out_c)
  in
  let x = conv_bn_relu b ~k:3 ~s:2 ~p:1 32 x in
  let acc = (x, 32) in
  let acc = dw_sep ~stride:1 ~out_c:64 acc in
  let acc = dw_sep ~stride:2 ~out_c:128 acc in
  let acc = dw_sep ~stride:1 ~out_c:128 ~exitable:true acc in
  let acc = dw_sep ~stride:2 ~out_c:256 acc in
  let acc = dw_sep ~stride:1 ~out_c:256 ~exitable:true acc in
  let acc = dw_sep ~stride:2 ~out_c:512 acc in
  let acc = dw_sep ~stride:1 ~out_c:512 acc in
  let acc = dw_sep ~stride:1 ~out_c:512 acc in
  let acc = dw_sep ~stride:1 ~out_c:512 acc in
  let acc = dw_sep ~stride:1 ~out_c:512 acc in
  let acc = dw_sep ~stride:1 ~out_c:512 ~exitable:true acc in
  let acc = dw_sep ~stride:2 ~out_c:1024 acc in
  let x, _ = dw_sep ~stride:1 ~out_c:1024 ~exitable:true acc in
  classifier_head b ~classes:1000 x |> ignore;
  Graph.Builder.finish b

let mobilenet_v2 () =
  let b, x = Graph.Builder.create ~name:"mobilenet_v2" ~input:imagenet_input in
  (* Inverted residual: 1x1 expand (t·c), 3x3 depthwise, 1x1 project;
     residual add when stride 1 and channels match. *)
  let inverted ~t ~stride ~out_c ?(exitable = false) (x, in_c) =
    let mid = in_c * t in
    let h = if t > 1 then conv_bn_relu b ~k:1 ~s:1 ~p:0 mid x else x in
    let h = conv_bn_relu b ~groups:mid ~k:3 ~s:stride ~p:1 mid h in
    let h = conv_bn b ~k:1 ~s:1 ~p:0 out_c h in
    let out =
      if stride = 1 && in_c = out_c then Graph.Builder.add b Layer.Add [ h; x ] else h
    in
    let out =
      if exitable then Graph.Builder.add b ~exitable:true Layer.Relu [ out ] else out
    in
    (out, out_c)
  in
  let x = conv_bn_relu b ~k:3 ~s:2 ~p:1 32 x in
  let acc = (x, 32) in
  let repeat ~t ~n ~stride ~out_c ?(exitable = false) acc =
    let rec go acc i =
      if i >= n then acc
      else begin
        let s = if i = 0 then stride else 1 in
        let e = exitable && i = n - 1 in
        go (inverted ~t ~stride:s ~out_c ~exitable:e acc) (i + 1)
      end
    in
    go acc 0
  in
  let acc = repeat ~t:1 ~n:1 ~stride:1 ~out_c:16 acc in
  let acc = repeat ~t:6 ~n:2 ~stride:2 ~out_c:24 ~exitable:true acc in
  let acc = repeat ~t:6 ~n:3 ~stride:2 ~out_c:32 ~exitable:true acc in
  let acc = repeat ~t:6 ~n:4 ~stride:2 ~out_c:64 acc in
  let acc = repeat ~t:6 ~n:3 ~stride:1 ~out_c:96 ~exitable:true acc in
  let acc = repeat ~t:6 ~n:3 ~stride:2 ~out_c:160 acc in
  let x, _ = repeat ~t:6 ~n:1 ~stride:1 ~out_c:320 ~exitable:true acc in
  let x = conv_bn_relu b ~k:1 ~s:1 ~p:0 1280 x in
  classifier_head b ~classes:1000 x |> ignore;
  Graph.Builder.finish b

(* A 4-branch inception module: 1x1 / 1x1+3x3 / 1x1+5x5 / pool+1x1,
   channel-concatenated. *)
let inception_module b ~c1 ~c3r ~c3 ~c5r ~c5 ~cp ?(exitable = false) x =
  let b1 = conv_relu b ~k:1 ~s:1 ~p:0 c1 x in
  let b2 = conv_relu b ~k:1 ~s:1 ~p:0 c3r x in
  let b2 = conv_relu b ~k:3 ~s:1 ~p:1 c3 b2 in
  let b3 = conv_relu b ~k:1 ~s:1 ~p:0 c5r x in
  let b3 = conv_relu b ~k:5 ~s:1 ~p:2 c5 b3 in
  let b4 = Graph.Builder.add b (maxpool ~k:3 ~s:1 ~p:1 ()) [ x ] in
  let b4 = conv_relu b ~k:1 ~s:1 ~p:0 cp b4 in
  Graph.Builder.add b ~exitable Layer.Concat [ b1; b2; b3; b4 ]

let inception_lite () =
  let b, x = Graph.Builder.create ~name:"inception_lite" ~input:imagenet_input in
  let x = conv_relu b ~k:7 ~s:2 ~p:3 64 x in
  let x = Graph.Builder.add b (maxpool ~k:3 ~s:2 ~p:1 ()) [ x ] in
  let x = conv_relu b ~k:3 ~s:1 ~p:1 192 x in
  let x = Graph.Builder.add b ~exitable:true (maxpool ~k:3 ~s:2 ~p:1 ()) [ x ] in
  let x = inception_module b ~c1:64 ~c3r:96 ~c3:128 ~c5r:16 ~c5:32 ~cp:32 x in
  let x = inception_module b ~c1:128 ~c3r:128 ~c3:192 ~c5r:32 ~c5:96 ~cp:64 ~exitable:true x in
  let x = Graph.Builder.add b (maxpool ~k:3 ~s:2 ~p:1 ()) [ x ] in
  let x = inception_module b ~c1:192 ~c3r:96 ~c3:208 ~c5r:16 ~c5:48 ~cp:64 ~exitable:true x in
  let x = inception_module b ~c1:160 ~c3r:112 ~c3:224 ~c5r:24 ~c5:64 ~cp:64 x in
  let x = Graph.Builder.add b (maxpool ~k:3 ~s:2 ~p:1 ()) [ x ] in
  let x = inception_module b ~c1:256 ~c3r:160 ~c3:320 ~c5r:32 ~c5:128 ~cp:128 ~exitable:true x in
  classifier_head b ~classes:1000 x |> ignore;
  Graph.Builder.finish b

let yolo_tiny () =
  let input = Shape.map ~c:3 ~h:416 ~w:416 in
  let b, x = Graph.Builder.create ~name:"yolo_tiny" ~input in
  let stage ?(exitable = false) ~pool_stride out_c x =
    let x = conv_bn_relu b ~exitable ~k:3 ~s:1 ~p:1 out_c x in
    Graph.Builder.add b (maxpool ~k:2 ~s:pool_stride ()) [ x ]
  in
  let x = stage ~pool_stride:2 16 x in
  let x = stage ~pool_stride:2 32 x in
  let x = stage ~pool_stride:2 ~exitable:true 64 x in
  let x = stage ~pool_stride:2 128 x in
  let x = stage ~pool_stride:2 ~exitable:true 256 x in
  (* Final pool keeps resolution (stride 1 over a padded 13x13 map is
     approximated by stride 1, k=2 over 14x14 padding omitted: use k=1). *)
  let x = conv_bn_relu b ~k:3 ~s:1 ~p:1 512 x in
  let x = conv_bn_relu b ~exitable:true ~k:3 ~s:1 ~p:1 1024 x in
  let x = conv_bn_relu b ~k:3 ~s:1 ~p:1 1024 x in
  let _ = Graph.Builder.add b ~name:"detect" (conv ~k:1 ~s:1 ~p:0 125) [ x ] in
  Graph.Builder.finish b

(* Fire module (SqueezeNet): 1x1 squeeze, then parallel 1x1 + 3x3 expands,
   channel-concatenated. *)
let fire_module b ~squeeze ~expand ?(exitable = false) x =
  let s = conv_relu b ~k:1 ~s:1 ~p:0 squeeze x in
  let e1 = conv_relu b ~k:1 ~s:1 ~p:0 expand s in
  let e3 = conv_relu b ~k:3 ~s:1 ~p:1 expand s in
  Graph.Builder.add b ~exitable Layer.Concat [ e1; e3 ]

let squeezenet () =
  let b, x = Graph.Builder.create ~name:"squeezenet" ~input:imagenet_input in
  let x = conv_relu b ~k:7 ~s:2 ~p:3 96 x in
  let x = Graph.Builder.add b (maxpool ~k:3 ~s:2 ()) [ x ] in
  let x = fire_module b ~squeeze:16 ~expand:64 x in
  let x = fire_module b ~squeeze:16 ~expand:64 x in
  let x = fire_module b ~squeeze:32 ~expand:128 ~exitable:true x in
  let x = Graph.Builder.add b (maxpool ~k:3 ~s:2 ()) [ x ] in
  let x = fire_module b ~squeeze:32 ~expand:128 x in
  let x = fire_module b ~squeeze:48 ~expand:192 ~exitable:true x in
  let x = fire_module b ~squeeze:48 ~expand:192 x in
  let x = fire_module b ~squeeze:64 ~expand:256 ~exitable:true x in
  let x = Graph.Builder.add b (maxpool ~k:3 ~s:2 ()) [ x ] in
  let x = fire_module b ~squeeze:64 ~expand:256 ~exitable:true x in
  let x = conv_relu b ~k:1 ~s:1 ~p:0 1000 x in
  let pool = Graph.Builder.add b (Layer.Global_pool Layer.Avg) [ x ] in
  let flat = Graph.Builder.add b ~name:"logits" Layer.Flatten [ pool ] in
  let _ = Graph.Builder.add b Layer.Softmax [ flat ] in
  Graph.Builder.finish b

(* Dense block (DenseNet): every layer consumes the concatenation of all
   previous outputs in the block — the densest DAG in the zoo, exercising
   multi-consumer cut accounting. *)
let densenet_lite () =
  let b, x = Graph.Builder.create ~name:"densenet_lite" ~input:imagenet_input in
  let growth = 24 in
  let x = conv_bn_relu b ~k:7 ~s:2 ~p:3 48 x in
  let x = Graph.Builder.add b (maxpool ~k:3 ~s:2 ~p:1 ()) [ x ] in
  let dense_layer feats =
    (* bn-relu-conv3 producing [growth] channels from the concat of feats. *)
    let cat =
      match feats with [ single ] -> single | _ -> Graph.Builder.add b Layer.Concat feats
    in
    let n = Graph.Builder.add b Layer.Batch_norm [ cat ] in
    let r = Graph.Builder.add b Layer.Relu [ n ] in
    Graph.Builder.add b (conv ~k:3 ~s:1 ~p:1 growth) [ r ]
  in
  let dense_block ~layers ?(exitable = false) x =
    let rec go feats i =
      if i = layers then begin
        let cat = Graph.Builder.add b ~exitable Layer.Concat (List.rev feats) in
        cat
      end
      else go (dense_layer (List.rev feats) :: feats) (i + 1)
    in
    go [ x ] 0
  in
  let transition ~out_c x =
    let c = conv_bn b ~k:1 ~s:1 ~p:0 out_c x in
    Graph.Builder.add b (Layer.Pool { kind = Layer.Avg; kernel = 2; stride = 2; pad = 0 }) [ c ]
  in
  let x = dense_block ~layers:4 ~exitable:true x in
  let x = transition ~out_c:96 x in
  let x = dense_block ~layers:6 ~exitable:true x in
  let x = transition ~out_c:144 x in
  let x = dense_block ~layers:8 ~exitable:true x in
  classifier_head b ~classes:1000 x |> ignore;
  Graph.Builder.finish b

let all () =
  [
    alexnet (); vgg16 (); resnet18 (); resnet34 (); resnet50 ();
    mobilenet_v1 (); mobilenet_v2 (); inception_lite (); yolo_tiny ();
    squeezenet (); densenet_lite ();
  ]

let names =
  [
    "alexnet"; "vgg16"; "resnet18"; "resnet34"; "resnet50";
    "mobilenet_v1"; "mobilenet_v2"; "inception_lite"; "yolo_tiny";
    "squeezenet"; "densenet_lite";
  ]

let by_name n =
  match n with
  | "alexnet" -> alexnet ()
  | "vgg16" -> vgg16 ()
  | "resnet18" -> resnet18 ()
  | "resnet34" -> resnet34 ()
  | "resnet50" -> resnet50 ()
  | "mobilenet_v1" -> mobilenet_v1 ()
  | "mobilenet_v2" -> mobilenet_v2 ()
  | "inception_lite" -> inception_lite ()
  | "yolo_tiny" -> yolo_tiny ()
  | "squeezenet" -> squeezenet ()
  | "densenet_lite" -> densenet_lite ()
  | _ -> raise Not_found
