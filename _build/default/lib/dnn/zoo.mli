(** Model zoo: layer-accurate reconstructions of the standard architectures
    used throughout the edge-inference literature.

    These are built from the published architecture tables, so layer DAGs,
    FLOP counts, parameter counts and activation sizes match the real
    networks — which is all that model surgery and the latency models consume
    (weights are irrelevant to the optimization problem; see DESIGN.md §2).

    Block boundaries are flagged [exitable] so surgery can attach early-exit
    heads at the standard positions. *)

val alexnet : unit -> Graph.t
(** 8-layer AlexNet, 224×224 input, 1000 classes (~1.4 GFLOPs). *)

val vgg16 : unit -> Graph.t
(** VGG-16, 224×224, 1000 classes (~31 GFLOPs). *)

val resnet18 : unit -> Graph.t
val resnet34 : unit -> Graph.t
val resnet50 : unit -> Graph.t
(** Residual networks with basic (18/34) and bottleneck (50) blocks. *)

val mobilenet_v1 : unit -> Graph.t
(** Depthwise-separable MobileNet, ~1.1 GFLOPs. *)

val mobilenet_v2 : unit -> Graph.t
(** Inverted-residual MobileNetV2, ~0.6 GFLOPs. *)

val inception_lite : unit -> Graph.t
(** A compact GoogLeNet-style network: stem plus five 4-branch inception
    modules; exercises branchy (non-chain) cuts. *)

val yolo_tiny : unit -> Graph.t
(** Tiny-YOLOv2-style detector, 416×416 input, fully convolutional. *)

val squeezenet : unit -> Graph.t
(** SqueezeNet 1.0: fire modules (squeeze + parallel expands), ~1.25 M
    params — the classic tiny-footprint architecture. *)

val densenet_lite : unit -> Graph.t
(** A compact DenseNet: dense blocks where each layer consumes the
    concatenation of every previous layer's output — the most densely
    connected DAG in the zoo, stressing multi-consumer cut accounting. *)

val all : unit -> Graph.t list
(** Every model above, in a fixed order. *)

val by_name : string -> Graph.t
(** Look up by [Graph.name] (e.g. ["resnet50"]).
    @raise Not_found for unknown names. *)

val names : string list
