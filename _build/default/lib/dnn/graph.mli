(** Layer DAGs.

    A model is a directed acyclic graph of layers stored in topological
    order: every node's predecessors have smaller ids.  This invariant is
    enforced at construction and makes cut enumeration (any prefix of the
    node array is a valid device-side subgraph) and shape inference single
    pass.

    Nodes can be flagged [exitable]: positions where model surgery may attach
    an early-exit head (the zoo flags block boundaries). *)

type node = private {
  id : int;
  node_name : string;
  layer : Layer.t;
  preds : int array;
  exitable : bool;
}

type t = private {
  uid : int;  (** process-unique id, assigned at [finish]; lets cost caches
                  key on a graph cheaply *)
  name : string;
  input_shape : Shape.t;
  nodes : node array;
  output : int;  (** id of the node producing the model's final output *)
  shapes : Shape.t array;  (** inferred output shape of every node *)
}

(** {1 Construction} *)

module Builder : sig
  type b

  val create : name:string -> input:Shape.t -> b * int
  (** Fresh builder plus the id of the implicit input node (always 0). *)

  val add : b -> ?name:string -> ?exitable:bool -> Layer.t -> int list -> int
  (** [add b layer preds] appends a node and returns its id.  Shape inference
      runs immediately. @raise Invalid_argument on unknown predecessor ids or
      shape errors. *)

  val shape_of : b -> int -> Shape.t
  (** Inferred output shape of an already-added node. *)

  val finish : ?output:int -> b -> t
  (** Seal the graph.  [output] defaults to the last node added.
      @raise Invalid_argument if the output id is out of range. *)
end

val sequential : name:string -> input:Shape.t -> (string option * bool * Layer.t) list -> t
(** Convenience for chain models: [(name, exitable, layer)] triples. *)

(** {1 Queries} *)

val n_nodes : t -> int
val node_shape : t -> int -> Shape.t
val node_flops : t -> int -> float
val node_params : t -> int -> float
val total_flops : t -> float
val total_params : t -> float
val output_shape : t -> Shape.t
val successors : t -> int -> int list
val exit_candidate_ids : t -> int list
(** Ids of nodes flagged exitable, in topological order. *)

val validate : t -> (unit, string) result
(** Re-checks all invariants (topological predecessor order, shape
    consistency, output id in range).  Construction guarantees them; this is
    exported for property tests and for graphs produced by transforms. *)

(** {1 Cuts}

    A cut at position [k] places nodes with id < k on the device and the
    rest on the server. [k = 0] offloads everything (the raw input is
    transferred); [k = n_nodes] runs everything on-device (nothing is
    transferred). *)

val prefix_flops : t -> int -> float
(** FLOPs of nodes [0, k). *)

val suffix_flops : t -> int -> float
(** FLOPs of nodes [k, n). *)

val cut_transfer_bytes : ?bytes_per_elt:int -> t -> int -> float
(** Bytes crossing the cut: activations produced before [k] and consumed at
    or after [k] (the raw input for [k = 0]; [0.] for [k = n_nodes]). *)

(** {1 Transforms} *)

val scale_width : float -> t -> t
(** Slim the network by a channel multiplier in (0, 1]: convolution channel
    counts shrink, downstream shapes and costs are re-inferred.  The final
    classifier keeps its output dimension. @raise Invalid_argument when the
    factor is outside (0, 1] or re-inference fails. *)

val pp_summary : Format.formatter -> t -> unit
(** One line per node: id, name, kind, shape, MFLOPs. *)
