(** DNN layer kinds with analytic cost models.

    Model surgery never touches weights — it only needs, per layer, the
    output shape, the FLOP count, and the parameter count.  These are exact
    analytic functions of the layer configuration, identical to what a
    profiler would derive from the published architecture tables. *)

type pool_kind = Max | Avg

type t =
  | Input
  | Conv of { out_c : int; kernel : int; stride : int; pad : int; groups : int }
      (** standard / grouped / depthwise convolution (depthwise when
          [groups = in_c]) *)
  | Fc of { out_features : int }
  | Pool of { kind : pool_kind; kernel : int; stride : int; pad : int }
  | Global_pool of pool_kind  (** collapses spatial dims to 1×1 *)
  | Relu
  | Batch_norm
  | Add  (** element-wise residual addition of all predecessors *)
  | Concat  (** channel-wise concatenation of all predecessors *)
  | Flatten
  | Softmax

val name : t -> string
(** Short kind name, e.g. ["conv3x3/2"]. *)

val output_shape : t -> Shape.t list -> Shape.t
(** Output shape given the predecessor output shapes (in predecessor order).
    @raise Invalid_argument on arity or shape mismatches, e.g. [Add] over
    different shapes or [Conv] over a vector. *)

val flops : t -> Shape.t list -> float
(** Floating-point operations to evaluate the layer once (a fused
    multiply-add counts as 2 FLOPs, the usual convention). *)

val params : t -> Shape.t list -> float
(** Number of trainable parameters (weights + biases). *)

val scale_width : float -> t -> t
(** Scale the layer's internal channel counts by a width multiplier.  [Fc]
    and shape-preserving layers are returned unchanged (the classifier head
    keeps its class count; its input size shrinks via the predecessor). *)

val pp : Format.formatter -> t -> unit
