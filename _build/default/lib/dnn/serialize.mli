(** Textual model serialization.

    A line-oriented, human-diffable format for layer DAGs, so models can be
    exported, versioned, and loaded without rebuilding them in code
    (real deployments exchange ONNX; this is the same idea at the
    granularity this library needs).  Format:

    {v
    model resnet18
    input 3x224x224
    node 1 conv1 conv out_c=64 k=7 s=2 p=3 g=1 preds=0
    node 2 bn bn preds=1
    node 3 relu relu exit preds=2
    ...
    output 70
    v}

    Round-trip is exact: [of_string (to_string g)] reproduces the graph
    (same layers, names, predecessors, exit flags, output). *)

val to_string : Graph.t -> string

val of_string : string -> (Graph.t, string) result
(** Parse a serialized model.  Errors carry the offending line number and a
    reason; a graph that parses but violates DAG/shape invariants is also
    rejected (the builder re-validates shapes on the fly). *)

val save : Graph.t -> path:string -> unit
(** @raise Sys_error on I/O failure. *)

val load : path:string -> (Graph.t, string) result
