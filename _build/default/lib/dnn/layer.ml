type pool_kind = Max | Avg

type t =
  | Input
  | Conv of { out_c : int; kernel : int; stride : int; pad : int; groups : int }
  | Fc of { out_features : int }
  | Pool of { kind : pool_kind; kernel : int; stride : int; pad : int }
  | Global_pool of pool_kind
  | Relu
  | Batch_norm
  | Add
  | Concat
  | Flatten
  | Softmax

let name = function
  | Input -> "input"
  | Conv { kernel; stride; groups; _ } ->
      if groups > 1 then Printf.sprintf "dwconv%dx%d/%d" kernel kernel stride
      else Printf.sprintf "conv%dx%d/%d" kernel kernel stride
  | Fc { out_features } -> Printf.sprintf "fc%d" out_features
  | Pool { kind; kernel; stride; _ } ->
      Printf.sprintf "%spool%d/%d" (match kind with Max -> "max" | Avg -> "avg") kernel stride
  | Global_pool kind -> (match kind with Max -> "gmaxpool" | Avg -> "gavgpool")
  | Relu -> "relu"
  | Batch_norm -> "bn"
  | Add -> "add"
  | Concat -> "concat"
  | Flatten -> "flatten"
  | Softmax -> "softmax"

let single = function
  | [ s ] -> s
  | inputs ->
      invalid_arg
        (Printf.sprintf "Layer.output_shape: expected 1 predecessor, got %d"
           (List.length inputs))

let output_shape t inputs =
  match t with
  | Input -> single inputs
  | Conv { out_c; kernel; stride; pad; _ } ->
      Shape.conv_out (single inputs) ~kernel ~stride ~pad ~out_c
  | Fc { out_features } -> (
      match single inputs with
      | Shape.Vec _ -> Shape.vec out_features
      | Shape.Map _ -> invalid_arg "Layer.output_shape: Fc over a feature map (flatten first)")
  | Pool { kernel; stride; pad; _ } ->
      let s = single inputs in
      Shape.conv_out s ~kernel ~stride ~pad ~out_c:(Shape.channels s)
  | Global_pool _ -> Shape.map ~c:(Shape.channels (single inputs)) ~h:1 ~w:1
  | Relu | Batch_norm | Softmax -> single inputs
  | Flatten -> Shape.flatten (single inputs)
  | Add -> (
      match inputs with
      | [] -> invalid_arg "Layer.output_shape: Add with no predecessors"
      | s :: rest ->
          if List.for_all (Shape.equal s) rest then s
          else invalid_arg "Layer.output_shape: Add over mismatched shapes")
  | Concat -> (
      match inputs with
      | [] -> invalid_arg "Layer.output_shape: Concat with no predecessors"
      | Shape.Map { c; h; w } :: rest ->
          let total =
            List.fold_left
              (fun acc s ->
                match s with
                | Shape.Map m when m.h = h && m.w = w -> acc + m.c
                | _ -> invalid_arg "Layer.output_shape: Concat over mismatched maps")
              c rest
          in
          Shape.map ~c:total ~h ~w
      | Shape.Vec n :: rest ->
          let total =
            List.fold_left
              (fun acc s ->
                match s with
                | Shape.Vec m -> acc + m
                | _ -> invalid_arg "Layer.output_shape: Concat mixing maps and vectors")
              n rest
          in
          Shape.vec total)

let flops t inputs =
  let out = output_shape t inputs in
  let fout = float_of_int (Shape.elements out) in
  match t with
  | Input -> 0.0
  | Conv { kernel; groups; _ } ->
      let in_c = Shape.channels (single inputs) in
      let macs_per_out = float_of_int (kernel * kernel * (in_c / groups)) in
      2.0 *. macs_per_out *. fout
  | Fc { out_features } ->
      let in_f = Shape.elements (single inputs) in
      2.0 *. float_of_int in_f *. float_of_int out_features
  | Pool { kernel; _ } -> float_of_int (kernel * kernel) *. fout
  | Global_pool _ -> float_of_int (Shape.elements (single inputs))
  | Relu -> fout
  | Batch_norm -> 2.0 *. fout
  | Add -> float_of_int (List.length inputs - 1) *. fout
  | Concat -> fout
  | Flatten -> 0.0
  | Softmax -> 5.0 *. fout

let params t inputs =
  match t with
  | Conv { out_c; kernel; groups; _ } ->
      let in_c = Shape.channels (single inputs) in
      float_of_int ((kernel * kernel * (in_c / groups) * out_c) + out_c)
  | Fc { out_features } ->
      let in_f = Shape.elements (single inputs) in
      float_of_int ((in_f * out_features) + out_features)
  | Batch_norm -> 2.0 *. float_of_int (Shape.channels (single inputs))
  | Input | Pool _ | Global_pool _ | Relu | Add | Concat | Flatten | Softmax -> 0.0

let scale_dim f d = max 1 (int_of_float (Float.round (float_of_int d *. f)))

let scale_width f = function
  | Conv c ->
      let out_c = scale_dim f c.out_c in
      (* Depthwise convs keep groups = channels; recompute below via graph
         re-inference, here we scale groups proportionally when grouped. *)
      let groups = if c.groups > 1 then scale_dim f c.groups else c.groups in
      Conv { c with out_c; groups }
  | ( Input | Fc _ | Pool _ | Global_pool _ | Relu | Batch_norm | Add | Concat | Flatten
    | Softmax ) as t ->
      t

let pp fmt t = Format.pp_print_string fmt (name t)
