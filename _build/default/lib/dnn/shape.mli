(** Tensor shapes flowing between DNN layers.

    Shapes are either feature maps (channels × height × width) or flat
    vectors; batch size is always 1 (single-request inference, the regime the
    paper targets). *)

type t =
  | Map of { c : int; h : int; w : int }  (** convolutional feature map *)
  | Vec of int  (** flattened feature vector *)

val map : c:int -> h:int -> w:int -> t
val vec : int -> t

val elements : t -> int
(** Number of scalar elements. *)

val bytes : ?bytes_per_elt:int -> t -> int
(** Size of the activation in bytes; default 4 bytes per element (fp32).
    Quantized deployments pass 1. *)

val channels : t -> int
(** Channel count of a map, or length of a vector. *)

val spatial : t -> int * int
(** (h, w) of a map; (1, 1) for vectors. *)

val conv_out : t -> kernel:int -> stride:int -> pad:int -> out_c:int -> t
(** Output shape of a convolution/pool window over a map.
    @raise Invalid_argument when applied to a [Vec] or when the window does
    not fit. *)

val flatten : t -> t
(** Collapse to a vector. *)

val scale_channels : float -> t -> t
(** Multiply the channel count (or vector length) by a factor, rounding to
    at least 1; used by width-scaling surgery. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
