type t = Map of { c : int; h : int; w : int } | Vec of int

let map ~c ~h ~w =
  if c <= 0 || h <= 0 || w <= 0 then invalid_arg "Shape.map: non-positive dimension";
  Map { c; h; w }

let vec n =
  if n <= 0 then invalid_arg "Shape.vec: non-positive length";
  Vec n

let elements = function Map { c; h; w } -> c * h * w | Vec n -> n

let bytes ?(bytes_per_elt = 4) t = elements t * bytes_per_elt

let channels = function Map { c; _ } -> c | Vec n -> n

let spatial = function Map { h; w; _ } -> (h, w) | Vec _ -> (1, 1)

let conv_out t ~kernel ~stride ~pad ~out_c =
  match t with
  | Vec _ -> invalid_arg "Shape.conv_out: convolution over a vector"
  | Map { h; w; _ } ->
      let out_dim d =
        let v = ((d + (2 * pad) - kernel) / stride) + 1 in
        if v <= 0 then invalid_arg "Shape.conv_out: window does not fit";
        v
      in
      Map { c = out_c; h = out_dim h; w = out_dim w }

let flatten t = Vec (elements t)

let scale_channels f = function
  | Map { c; h; w } -> Map { c = max 1 (int_of_float (Float.round (float_of_int c *. f))); h; w }
  | Vec n -> Vec (max 1 (int_of_float (Float.round (float_of_int n *. f))))

let equal a b = a = b

let pp fmt = function
  | Map { c; h; w } -> Format.fprintf fmt "%dx%dx%d" c h w
  | Vec n -> Format.fprintf fmt "%d" n

let to_string t = Format.asprintf "%a" pp t
