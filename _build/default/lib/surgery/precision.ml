type t = Fp32 | Fp16 | Int8

let all = [ Fp32; Fp16; Int8 ]

let name = function Fp32 -> "fp32" | Fp16 -> "fp16" | Int8 -> "int8"

let bytes_per_elt = function Fp32 -> 4 | Fp16 -> 2 | Int8 -> 1

let compute_scale = function Fp32 -> 1.0 | Fp16 -> 1.6 | Int8 -> 2.5

let apply p (perf : Es_dnn.Profile.perf) =
  let s = compute_scale p in
  Es_dnn.Profile.perf
    ~flops_per_s:(perf.Es_dnn.Profile.flops_per_s *. s)
    ~mem_bytes_per_s:(perf.Es_dnn.Profile.mem_bytes_per_s *. s)
    ~layer_overhead_s:perf.Es_dnn.Profile.layer_overhead_s

let accuracy_factor = function Fp32 -> 1.0 | Fp16 -> 0.998 | Int8 -> 0.985

let of_string = function
  | "fp32" -> Some Fp32
  | "fp16" -> Some Fp16
  | "int8" -> Some Int8
  | _ -> None
