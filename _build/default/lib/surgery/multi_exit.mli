(** Multi-exit model deployment.

    A multi-exit model carries several exit heads simultaneously; at run
    time each input leaves at the first exit that is confident about it
    (BranchyNet semantics).  The online simulator uses this to draw
    per-request compute: easy inputs cost the shallow prefix, hard inputs
    run deep. *)

type t = private {
  base : Es_dnn.Graph.t;
  exits : Plan.t array;  (** one plan per head, shallowest first, last = full *)
  probs : float array;  (** probability an input takes each exit *)
  deployment_accuracy : float;  (** expectation over the exit distribution *)
}

val build : ?kappa:float -> ?width:float -> ?exit_nodes:int list -> Es_dnn.Graph.t -> t
(** [build g] attaches heads at every flagged exit candidate of [g] (or the
    given subset) plus the full-depth exit.  [kappa] is the input-easiness
    parameter of {!Accuracy.exit_distribution}. *)

val n_exits : t -> int

val sample_exit : Es_util.Prng.t -> t -> int
(** Index into [exits], drawn from [probs]. *)

val expected_flops : t -> float
(** Mean FLOPs per inference under the exit distribution — the headline
    saving of multi-exit inference. *)

val overhead_flops : t -> float
(** Extra FLOPs of evaluating the non-final exit heads themselves (paid on
    the path actually executed, upper bound: all heads). *)
