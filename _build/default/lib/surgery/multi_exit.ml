type t = {
  base : Es_dnn.Graph.t;
  exits : Plan.t array;
  probs : float array;
  deployment_accuracy : float;
}

let build ?(kappa = 2.0) ?width ?exit_nodes g =
  let ids =
    match exit_nodes with Some l -> l | None -> Es_dnn.Graph.exit_candidate_ids g
  in
  List.iter
    (fun id ->
      if not (List.mem id (Es_dnn.Graph.exit_candidate_ids g)) then
        invalid_arg (Printf.sprintf "Multi_exit.build: node %d is not exitable" id))
    ids;
  let plans =
    List.map (fun id -> Plan.make ?width ~exit_node:id g) ids @ [ Plan.make ?width g ]
  in
  let exits = Array.of_list plans in
  let accuracies = Array.map (fun (p : Plan.t) -> p.Plan.accuracy) exits in
  let probs = Accuracy.exit_distribution ~kappa accuracies in
  let deployment_accuracy = Accuracy.expected_accuracy probs accuracies in
  { base = g; exits; probs; deployment_accuracy }

let n_exits t = Array.length t.exits

let sample_exit rng t =
  let pairs = Array.mapi (fun i p -> (i, p)) t.probs in
  Es_util.Prng.weighted_choice rng pairs

let expected_flops t =
  let total = ref 0.0 in
  Array.iteri
    (fun i (p : Plan.t) ->
      total := !total +. (t.probs.(i) *. Es_dnn.Graph.total_flops p.Plan.graph))
    t.exits;
  !total

let overhead_flops t =
  let head_cost (p : Plan.t) =
    (* The head is everything past the truncation point of the base graph:
       total of the truncated graph minus its shared prefix. *)
    match p.Plan.exit_node with
    | None -> 0.0
    | Some id ->
        Es_dnn.Graph.total_flops p.Plan.graph
        -. Es_dnn.Graph.prefix_flops p.Plan.graph (id + 1)
  in
  Array.fold_left (fun acc p -> acc +. head_cost p) 0.0
    (Array.sub t.exits 0 (Array.length t.exits - 1))
