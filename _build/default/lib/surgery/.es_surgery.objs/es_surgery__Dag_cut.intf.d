lib/surgery/dag_cut.mli: Es_dnn
