lib/surgery/precision.ml: Es_dnn
