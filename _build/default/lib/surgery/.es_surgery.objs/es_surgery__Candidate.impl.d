lib/surgery/candidate.ml: Array Es_dnn Es_util Hashtbl List Plan Precision Printf String
