lib/surgery/precision.mli: Es_dnn
