lib/surgery/accuracy.mli:
