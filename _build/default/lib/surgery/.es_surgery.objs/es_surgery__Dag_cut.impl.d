lib/surgery/dag_cut.ml: Array Es_dnn Es_util Graph List Printf Profile Shape
