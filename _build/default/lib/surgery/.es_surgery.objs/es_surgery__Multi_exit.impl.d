lib/surgery/multi_exit.ml: Accuracy Array Es_dnn Es_util List Plan Printf
