lib/surgery/accuracy.ml: Array Es_util Float
