lib/surgery/plan.ml: Accuracy Array Es_dnn Es_util Float Graph Layer List Precision Printf Profile Shape
