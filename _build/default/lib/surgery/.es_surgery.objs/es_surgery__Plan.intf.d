lib/surgery/plan.mli: Es_dnn Precision
