lib/surgery/candidate.mli: Es_dnn Plan Precision
