lib/surgery/multi_exit.mli: Es_dnn Es_util Plan
