(** Surgery plans: the unit of decision of the joint optimizer.

    A plan fixes the three surgery knobs for one model:
    - [exit_node] — truncate the base graph after this node and attach a
      lightweight exit head (global-pool + FC for classifiers, 1×1 conv for
      detectors); [None] keeps the full depth;
    - [width] — slim the truncated network by a channel multiplier;
    - [precision] — numeric precision ({!Precision.t}): quantization shrinks
      transfers and speeds up compute at a small accuracy cost;
    - [cut] — partition position in the *executed* graph: nodes before the
      cut run on the device, the rest on an edge server, the crossing
      activations are shipped uplink.

    The executed graph is materialized concretely (via {!Es_dnn.Graph}), so
    every cost below is an exact layer-walk, not an estimate of an
    estimate. *)

type t = private {
  base_name : string;  (** zoo name of the unmodified model *)
  width : float;
  exit_node : int option;  (** node id in the base graph; [None] = full depth *)
  precision : Precision.t;
  graph : Es_dnn.Graph.t;  (** the executed (truncated, width-scaled) graph *)
  cut : int;  (** in [0, n_nodes graph] *)
  depth_frac : float;  (** FLOPs of the truncated graph / FLOPs of the base *)
  accuracy : float;  (** from {!Accuracy.predict} *)
}

val make :
  ?width:float -> ?exit_node:int -> ?precision:Precision.t -> ?cut:int -> Es_dnn.Graph.t -> t
(** [make base] builds a plan.  Defaults: full width, full depth, fp32, and
    [cut = 0] (full offload).  [cut] defaults apply after truncation; pass
    [cut = n_nodes] of the executed graph for device-only execution — use
    {!device_only} / {!server_only} for the common cases.
    @raise Invalid_argument for an invalid exit node (not one of the base
    graph's exit candidates or its output), width outside (0, 1], or a cut
    outside range. *)

val device_only :
  ?width:float -> ?exit_node:int -> ?precision:Precision.t -> Es_dnn.Graph.t -> t
(** Plan executing entirely on the device (cut at the end). *)

val server_only :
  ?width:float -> ?exit_node:int -> ?precision:Precision.t -> Es_dnn.Graph.t -> t
(** Plan offloading everything (cut at 0; the raw input is shipped). *)

val with_cut : t -> int -> t
(** Same surgery, different partition point. *)

val truncate_at : Es_dnn.Graph.t -> int -> Es_dnn.Graph.t
(** [truncate_at base id] — the prefix of [base] up to and including node
    [id], with a fresh exit head attached.  Exposed for tests and for
    multi-exit model construction ({!Multi_exit}). *)

(** {1 Costs} *)

val dev_flops : t -> float
val srv_flops : t -> float
val transfer_bytes : t -> float
(** Uplink bytes: activations crossing the cut at the plan's precision
    (raw input when [cut = 0], 0 when fully on-device). *)

val result_bytes : t -> float
(** Downlink bytes: the final output tensor, 0 when fully on-device. *)

val device_mem_bytes : t -> float
(** Device-side memory footprint: the prefix's weights at the plan's
    precision plus double the largest activation (in/out buffers).  Used
    against {!Es_edge.Processor.t.mem_bytes} — a VGG-16 at fp32 simply does
    not fit a 512 MB IoT board, forcing offload or quantization. *)

val device_time : Es_dnn.Profile.perf -> t -> float
(** Exact layer-walk execution time of the device-side prefix, at the
    plan's precision. *)

val server_time : Es_dnn.Profile.perf -> t -> float
(** Exact layer-walk execution time of the server-side suffix, at full
    (unshared) speed; the allocator divides by the compute share. *)

val is_device_only : t -> bool
val is_server_only : t -> bool

val describe : t -> string
(** e.g. ["resnet50 w=1.00 exit=full cut=57/177"]. *)
