(** Accuracy model for surgically modified networks.

    The optimizer needs, for every surgery plan, the expected accuracy it
    delivers.  With no access to trained weights we use the well-documented
    empirical shapes of the multi-exit / slimmable-network literature
    (BranchyNet, MSDNet, SPINN, slimmable networks):

    - accuracy grows with network depth with strongly diminishing returns:
      an exit at 40–50% of the FLOPs already recovers most of the final
      accuracy, the last layers contribute a few points;
    - slimming the width costs little until roughly half width, then falls
      off quickly.

    Both effects are modeled multiplicatively around the model's published
    full accuracy:

      A(d, w) = A_full · (1 − drop·(1−d)^γ) · (1 − wpen·(1−w)^δ)

    with per-model parameters.  Only the *shape* of this surface matters to
    the joint optimizer (it induces the accuracy–latency Pareto frontier);
    see DESIGN.md §2 for why this substitution is safe. *)

type profile = {
  full_accuracy : float;  (** published top-1 (or mAP for detectors) *)
  depth_drop : float;  (** accuracy lost by an exit at depth 0 *)
  depth_gamma : float;  (** curvature of the depth effect, > 1 *)
  width_penalty : float;  (** accuracy lost at width → 0 *)
  width_delta : float;  (** curvature of the width effect *)
}

val profile_of_model : string -> profile
(** Profile for a zoo model name; falls back to a generic profile for
    unknown names so user-supplied models work out of the box. *)

val predict : profile -> depth_frac:float -> width:float -> float
(** Expected accuracy of a plan truncated at a fraction [depth_frac] of the
    full model's FLOPs and slimmed to [width].  Clamped to [0, 1].
    @raise Invalid_argument if [depth_frac] or [width] is outside (0, 1]. *)

(** {1 Input-dependent early exit}

    A deployed multi-exit model lets easy inputs leave at the first exit
    whose confidence clears a threshold.  We model input "difficulty" as the
    fraction of inputs each exit can confidently classify, yielding the
    probability that a request exits at each head — used by the online
    simulator to draw per-request compute. *)

val exit_distribution : ?kappa:float -> float array -> float array
(** [exit_distribution accuracies] maps the (increasing) accuracies of the
    exits of a multi-exit model to the probability that an input takes each
    exit (first-exit-wins, the last exit takes all leftovers).  [kappa]
    (default 2.0) controls how many inputs are easy: higher = more early
    exits.  Probabilities are non-negative and sum to 1.
    @raise Invalid_argument on an empty array. *)

val expected_accuracy : float array -> float array -> float
(** [expected_accuracy probs accuracies] — inner product, the deployment
    accuracy of a thresholded multi-exit model. *)
