open Es_dnn

type split = {
  device_side : bool array;
  total_cost : float;
  dev_cost : float;
  srv_cost : float;
  transfer_cost : float;
}

let split_costs ~dev_cost ~srv_cost ~transfer_cost g device_side =
  let n = Graph.n_nodes g in
  let dev = ref 0.0 and srv = ref 0.0 and xfer = ref 0.0 in
  for v = 0 to n - 1 do
    if device_side.(v) then dev := !dev +. dev_cost v else srv := !srv +. srv_cost v
  done;
  for v = 0 to n - 1 do
    if device_side.(v) then begin
      let ships =
        List.exists (fun c -> not device_side.(c)) (Graph.successors g v)
      in
      if ships then xfer := !xfer +. transfer_cost v
    end
  done;
  (!dev, !srv, !xfer)

let optimal_split ~dev_cost ~srv_cost ~transfer_cost g =
  let n = Graph.n_nodes g in
  (* Vertex layout: graph nodes 0..n-1, one auxiliary vertex per node that
     has successors, then source and sink. *)
  let succs = Array.init n (fun v -> Graph.successors g v) in
  let aux_index = Array.make n (-1) in
  let n_aux = ref 0 in
  Array.iteri
    (fun v s ->
      if s <> [] then begin
        aux_index.(v) <- n + !n_aux;
        incr n_aux
      end)
    succs;
  let source = n + !n_aux and sink = n + !n_aux + 1 in
  let net = Es_util.Maxflow.create ~n:(n + !n_aux + 2) in
  for v = 0 to n - 1 do
    (* Device side pays dev_cost when v is cut off from the sink. *)
    let dc = dev_cost v and sc = srv_cost v in
    if dc > 0.0 then Es_util.Maxflow.add_edge net ~src:v ~dst:sink ~capacity:dc;
    if sc > 0.0 then Es_util.Maxflow.add_edge net ~src:source ~dst:v ~capacity:sc;
    (* Activation gadget: u -> aux(u) with the transfer cost, aux -> each
       consumer with infinity, so the cost is charged once iff any consumer
       lands on the server while u stays on the device. *)
    if succs.(v) <> [] then begin
      let a = aux_index.(v) in
      Es_util.Maxflow.add_edge net ~src:v ~dst:a ~capacity:(transfer_cost v);
      List.iter
        (fun c ->
          Es_util.Maxflow.add_edge net ~src:a ~dst:c ~capacity:infinity;
          (* Forbid server -> device data flow. *)
          Es_util.Maxflow.add_edge net ~src:c ~dst:v ~capacity:infinity)
        succs.(v)
    end
  done;
  (* Pin the input to the device. *)
  Es_util.Maxflow.add_edge net ~src:source ~dst:0 ~capacity:infinity;
  let _value = Es_util.Maxflow.max_flow net ~source ~sink in
  let side = Es_util.Maxflow.min_cut_side net ~source in
  let device_side = Array.init n (fun v -> side.(v)) in
  let dev, srv, xfer = split_costs ~dev_cost ~srv_cost ~transfer_cost g device_side in
  { device_side; total_cost = dev +. srv +. xfer; dev_cost = dev; srv_cost = srv;
    transfer_cost = xfer }

let latency_costs ~device ~server ~bandwidth_bps g =
  let dev v = Profile.layer_latency device g v in
  let srv v = Profile.layer_latency server g v in
  let xfer v = float_of_int (Shape.bytes (Graph.node_shape g v)) *. 8.0 /. bandwidth_bps in
  (dev, srv, xfer)

let best_prefix_cost ~dev_cost ~srv_cost ~transfer_cost g =
  let n = Graph.n_nodes g in
  let best_cut = ref 0 and best = ref infinity in
  for cut = 0 to n do
    let device_side = Array.init n (fun v -> v < cut) in
    let dev, srv, xfer = split_costs ~dev_cost ~srv_cost ~transfer_cost g device_side in
    (* A prefix cut of 0 still ships the raw input: charge node 0's
       transfer explicitly since nothing is on the device side. *)
    let xfer = if cut = 0 then transfer_cost 0 else xfer in
    let cost = dev +. srv +. xfer in
    if cost < !best then begin
      best := cost;
      best_cut := cut
    end
  done;
  (!best_cut, !best)

let validate g device_side =
  let n = Graph.n_nodes g in
  if Array.length device_side <> n then Error "split size mismatch"
  else if not device_side.(0) then Error "input node must stay on the device"
  else begin
    let bad = ref None in
    for v = 0 to n - 1 do
      if not device_side.(v) then
        List.iter
          (fun c -> if device_side.(c) then bad := Some (v, c))
          (Graph.successors g v)
    done;
    match !bad with
    | Some (v, c) -> Error (Printf.sprintf "server node %d feeds device node %d" v c)
    | None -> Ok ()
  end
