(** Surgery-candidate generation.

    Enumerates the full (exit × width × cut) plan space of a model and
    prunes it to the Pareto frontier under
    (device FLOPs, transfer bytes, server FLOPs, −accuracy) — the four
    quantities every latency/accuracy objective is monotone in.  The joint
    optimizer then only ever scans this frontier. *)

val default_widths : float list
(** [1.0; 0.75; 0.5] — the standard slimmable-network operating points. *)

val exit_nodes : Es_dnn.Graph.t -> int option list
(** The exit decisions available on a model: each flagged exit candidate,
    plus [None] (full depth). *)

val default_precisions : Precision.t list
(** [Fp32; Int8] — fp16 adds little over this pair for the optimizer. *)

val generate :
  ?widths:float list ->
  ?exits:int option list ->
  ?precisions:Precision.t list ->
  Es_dnn.Graph.t ->
  Plan.t list
(** Every (exit, width, precision, cut) plan.  Cut positions are all of
    [0 .. n_nodes] of each executed graph.  Plans sharing (exit, width)
    share their executed graph, so generation is O(exits·widths) graph
    builds plus O(total cuts) records. *)

val pareto : Plan.t list -> Plan.t list
(** Non-dominated plans under (dev_flops, transfer_bytes, srv_flops,
    −accuracy), all minimized. *)

val pareto_candidates :
  ?widths:float list ->
  ?exits:int option list ->
  ?precisions:Precision.t list ->
  Es_dnn.Graph.t ->
  Plan.t list
(** [pareto (generate g)] with memoization keyed by (model name, widths,
    exits) — candidate sets are queried once per model per experiment but
    reused across devices and sweep points. *)

val clear_cache : unit -> unit

val subsample : int -> Plan.t list -> Plan.t list
(** [subsample k plans] keeps at most [k] plans, evenly spaced over the
    list (first and last always kept).  Used to bound the exhaustive
    solver's search space and to run the heuristic over the identical grid
    for optimality-gap measurements. *)

