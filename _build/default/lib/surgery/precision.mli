(** Numeric precision as a surgery dimension.

    Post-training quantization is the third standard surgery knob next to
    exits and width: it shrinks the shipped activations (fp16 halves, int8
    quarters the bytes) and speeds up compute on modern accelerators, at a
    small accuracy cost for int8.  The model here is deliberately coarse —
    a uniform per-precision throughput multiplier and byte width — which is
    exactly the granularity the joint optimizer consumes. *)

type t = Fp32 | Fp16 | Int8

val all : t list
(** [Fp32; Fp16; Int8]. *)

val name : t -> string

val bytes_per_elt : t -> int
(** 4 / 2 / 1. *)

val compute_scale : t -> float
(** Throughput multiplier over fp32 (1.0 / 1.6 / 2.5): applied to both the
    FLOP and memory-bandwidth terms of a processor's roofline. *)

val apply : t -> Es_dnn.Profile.perf -> Es_dnn.Profile.perf
(** Processor as seen when executing at this precision: compute and memory
    throughput scaled by {!compute_scale}, per-layer overhead unchanged. *)

val accuracy_factor : t -> float
(** Multiplicative accuracy retention: 1.0 for fp32, ~0.998 for fp16,
    ~0.985 for int8 post-training quantization (literature range 0.5–2.5
    points; we sit in the middle). *)

val of_string : string -> t option
