(** Optimal DAG partitioning by minimum cut.

    {!Plan} restricts partitions to prefixes of the topological order —
    optimal for chains, but branchy models (inception modules, dense
    blocks) can admit cheaper splits that keep one branch on the device
    while offloading another.  Following the DADS-style reduction, the
    minimum-cost split is an s–t min-cut of a flow network:

    - node [v] on the device costs [dev_cost v] (edge v→t),
    - node [v] on the server costs [srv_cost v] (edge s→v),
    - an activation produced on the device and consumed on the server is
      uplinked once, costing [transfer_cost v] (auxiliary-node gadget),
    - server→device data-flow is forbidden (∞ reverse edges), and the
      input node is pinned to the device.

    All costs must share a unit (seconds, or seconds-per-second at a given
    request rate). *)

type split = {
  device_side : bool array;  (** per node id; [true] = runs on the device *)
  total_cost : float;  (** device + server + transfer cost of the split *)
  dev_cost : float;
  srv_cost : float;
  transfer_cost : float;
}

val optimal_split :
  dev_cost:(int -> float) ->
  srv_cost:(int -> float) ->
  transfer_cost:(int -> float) ->
  Es_dnn.Graph.t ->
  split
(** Exact minimum-cost device/server assignment.  [transfer_cost v] is the
    cost of uplinking node [v]'s activation (charged at most once).
    The returned assignment always keeps the input node on the device and
    never requires server→device transfers mid-inference. *)

val latency_costs :
  device:Es_dnn.Profile.perf ->
  server:Es_dnn.Profile.perf ->
  bandwidth_bps:float ->
  Es_dnn.Graph.t ->
  (int -> float) * (int -> float) * (int -> float)
(** Convenience cost triple in seconds: per-node device/server execution
    time and activation transfer time at the given uplink rate. *)

val best_prefix_cost :
  dev_cost:(int -> float) ->
  srv_cost:(int -> float) ->
  transfer_cost:(int -> float) ->
  Es_dnn.Graph.t ->
  int * float
(** The best prefix cut under the same cost model: (cut position, cost).
    The min-cut split is never worse; the gap measures what prefix-only
    partitioning leaves on the table for branchy DAGs. *)

val validate : Es_dnn.Graph.t -> bool array -> (unit, string) result
(** Check a split's physical validity: input on device and no edge from a
    server node into a device node. *)
