open Es_dnn

type t = {
  base_name : string;
  width : float;
  exit_node : int option;
  precision : Precision.t;
  graph : Graph.t;
  cut : int;
  depth_frac : float;
  accuracy : float;
}

(* Exit-head construction mirrors the standard practice: classifiers get
   global-pool + FC (+softmax), detectors a 1x1 conv to the original output
   channels at the current resolution. *)
let attach_head b ~base_output_shape last =
  let last_shape = Graph.Builder.shape_of b last in
  match base_output_shape with
  | Shape.Vec classes ->
      let x =
        match last_shape with
        | Shape.Map _ ->
            let p = Graph.Builder.add b ~name:"exit_pool" (Layer.Global_pool Layer.Avg) [ last ] in
            Graph.Builder.add b ~name:"exit_flatten" Layer.Flatten [ p ]
        | Shape.Vec _ -> last
      in
      let fc = Graph.Builder.add b ~name:"exit_fc" (Layer.Fc { out_features = classes }) [ x ] in
      Graph.Builder.add b ~name:"exit_softmax" Layer.Softmax [ fc ]
  | Shape.Map { c; _ } ->
      Graph.Builder.add b ~name:"exit_detect"
        (Layer.Conv { out_c = c; kernel = 1; stride = 1; pad = 0; groups = 1 })
        [ last ]

let truncate_at (base : Graph.t) id =
  let n = Graph.n_nodes base in
  if id < 0 || id >= n then invalid_arg "Plan.truncate_at: node id out of range";
  if id = base.output then base
  else begin
    let b, _ =
      Graph.Builder.create
        ~name:(Printf.sprintf "%s@exit%d" base.name id)
        ~input:base.input_shape
    in
    for i = 1 to id do
      let node = base.nodes.(i) in
      let got =
        Graph.Builder.add b ~name:node.node_name ~exitable:node.exitable node.layer
          (Array.to_list node.preds)
      in
      assert (got = i)
    done;
    let out = attach_head b ~base_output_shape:(Graph.output_shape base) id in
    Graph.Builder.finish ~output:out b
  end

let valid_exit base id =
  id = base.Graph.output || List.mem id (Graph.exit_candidate_ids base)

let make ?(width = 1.0) ?exit_node ?(precision = Precision.Fp32) ?(cut = 0) (base : Graph.t) =
  if width <= 0.0 || width > 1.0 then invalid_arg "Plan.make: width outside (0,1]";
  (match exit_node with
  | Some id when not (valid_exit base id) ->
      invalid_arg (Printf.sprintf "Plan.make: node %d is not an exit candidate" id)
  | _ -> ());
  let trunc = match exit_node with None -> base | Some id -> truncate_at base id in
  let depth_frac =
    Es_util.Numeric.clamp ~lo:1e-6 ~hi:1.0 (Graph.total_flops trunc /. Graph.total_flops base)
  in
  let graph = Graph.scale_width width trunc in
  let n = Graph.n_nodes graph in
  if cut < 0 || cut > n then invalid_arg "Plan.make: cut out of range";
  let accuracy =
    Accuracy.predict (Accuracy.profile_of_model base.name) ~depth_frac ~width
    *. Precision.accuracy_factor precision
  in
  { base_name = base.name; width; exit_node; precision; graph; cut; depth_frac; accuracy }

let device_only ?width ?exit_node ?precision base =
  let p = make ?width ?exit_node ?precision ~cut:0 base in
  { p with cut = Graph.n_nodes p.graph }

let server_only ?width ?exit_node ?precision base = make ?width ?exit_node ?precision ~cut:0 base

let with_cut t cut =
  let n = Graph.n_nodes t.graph in
  if cut < 0 || cut > n then invalid_arg "Plan.with_cut: cut out of range";
  { t with cut }

let dev_flops t = Graph.prefix_flops t.graph t.cut
let srv_flops t = Graph.suffix_flops t.graph t.cut

let transfer_bytes t =
  Graph.cut_transfer_bytes ~bytes_per_elt:(Precision.bytes_per_elt t.precision) t.graph t.cut

let result_bytes t =
  if t.cut >= Graph.n_nodes t.graph then 0.0
  else
    float_of_int
      (Shape.bytes ~bytes_per_elt:(Precision.bytes_per_elt t.precision)
         (Graph.output_shape t.graph))

let device_mem_bytes t =
  let bpe = float_of_int (Precision.bytes_per_elt t.precision) in
  let weights = ref 0.0 and peak_act = ref 0.0 in
  for i = 0 to t.cut - 1 do
    weights := !weights +. Graph.node_params t.graph i;
    peak_act := Float.max !peak_act (float_of_int (Shape.elements (Graph.node_shape t.graph i)))
  done;
  bpe *. (!weights +. (2.0 *. !peak_act))

let effective_perf perf t = Precision.apply t.precision perf

let device_time perf t = Profile.range_latency (effective_perf perf t) t.graph ~lo:0 ~hi:t.cut

let server_time perf t =
  Profile.range_latency (effective_perf perf t) t.graph ~lo:t.cut ~hi:(Graph.n_nodes t.graph)

let is_device_only t = t.cut >= Graph.n_nodes t.graph
let is_server_only t = t.cut = 0

let describe t =
  Printf.sprintf "%s w=%.2f exit=%s %s cut=%d/%d acc=%.3f" t.base_name t.width
    (match t.exit_node with None -> "full" | Some id -> string_of_int id)
    (Precision.name t.precision) t.cut (Graph.n_nodes t.graph) t.accuracy
