type profile = {
  full_accuracy : float;
  depth_drop : float;
  depth_gamma : float;
  width_penalty : float;
  width_delta : float;
}

let generic =
  {
    full_accuracy = 0.70;
    depth_drop = 0.30;
    depth_gamma = 1.8;
    width_penalty = 0.12;
    width_delta = 1.2;
  }

(* full_accuracy: published top-1 on ImageNet (mAP-derived for yolo_tiny).
   depth_drop/gamma loosely calibrated to BranchyNet/MSDNet exit curves:
   deeper, more over-provisioned models tolerate early exits better. *)
let profile_of_model = function
  | "alexnet" -> { generic with full_accuracy = 0.565; depth_drop = 0.25; depth_gamma = 1.5 }
  | "vgg16" -> { generic with full_accuracy = 0.715; depth_drop = 0.28; depth_gamma = 2.0 }
  | "resnet18" -> { generic with full_accuracy = 0.698; depth_drop = 0.30 }
  | "resnet34" -> { generic with full_accuracy = 0.733; depth_drop = 0.32; depth_gamma = 2.0 }
  | "resnet50" -> { generic with full_accuracy = 0.761; depth_drop = 0.33; depth_gamma = 2.1 }
  | "mobilenet_v1" ->
      { generic with full_accuracy = 0.706; depth_drop = 0.30; width_penalty = 0.17 }
  | "mobilenet_v2" ->
      { generic with full_accuracy = 0.720; depth_drop = 0.31; width_penalty = 0.16 }
  | "inception_lite" -> { generic with full_accuracy = 0.698; depth_drop = 0.29 }
  | "yolo_tiny" -> { generic with full_accuracy = 0.571; depth_drop = 0.35; depth_gamma = 2.2 }
  | "squeezenet" ->
      { generic with full_accuracy = 0.575; depth_drop = 0.26; width_penalty = 0.18 }
  | "densenet_lite" -> { generic with full_accuracy = 0.720; depth_drop = 0.30 }
  | _ -> generic

let predict p ~depth_frac ~width =
  if depth_frac <= 0.0 || depth_frac > 1.0 then
    invalid_arg "Accuracy.predict: depth_frac outside (0,1]";
  if width <= 0.0 || width > 1.0 then invalid_arg "Accuracy.predict: width outside (0,1]";
  let depth_factor = 1.0 -. (p.depth_drop *. ((1.0 -. depth_frac) ** p.depth_gamma)) in
  let width_factor = 1.0 -. (p.width_penalty *. ((1.0 -. width) ** p.width_delta)) in
  Es_util.Numeric.clamp ~lo:0.0 ~hi:1.0 (p.full_accuracy *. depth_factor *. width_factor)

let exit_distribution ?(kappa = 2.0) accuracies =
  let k = Array.length accuracies in
  if k = 0 then invalid_arg "Accuracy.exit_distribution: no exits";
  let final = accuracies.(k - 1) in
  (* Coverage of exit i: fraction of inputs it classifies confidently.
     Normalizing by the final accuracy makes the last exit cover ~all. *)
  let coverage =
    Array.map
      (fun a ->
        if final <= 0.0 then 1.0
        else Es_util.Numeric.clamp ~lo:0.0 ~hi:1.0 ((a /. final) ** kappa))
      accuracies
  in
  coverage.(k - 1) <- 1.0;
  let probs = Array.make k 0.0 in
  let prev = ref 0.0 in
  for i = 0 to k - 1 do
    let c = Float.max coverage.(i) !prev in
    probs.(i) <- c -. !prev;
    prev := c
  done;
  probs

let expected_accuracy probs accuracies =
  if Array.length probs <> Array.length accuracies then
    invalid_arg "Accuracy.expected_accuracy: length mismatch";
  let total = ref 0.0 in
  Array.iteri (fun i p -> total := !total +. (p *. accuracies.(i))) probs;
  !total
