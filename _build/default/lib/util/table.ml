type align = Left | Right

let pad a width s =
  let n = String.length s in
  if n >= width then s
  else
    match a with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render ?(align = []) ~header rows =
  let ncols =
    List.fold_left (fun acc r -> Stdlib.max acc (List.length r)) (List.length header) rows
  in
  let cell row i = match List.nth_opt row i with Some c -> c | None -> "" in
  let col_align i = match List.nth_opt align i with Some a -> a | None -> Right in
  let widths =
    Array.init ncols (fun i ->
        List.fold_left
          (fun acc r -> Stdlib.max acc (String.length (cell r i)))
          (String.length (cell header i))
          rows)
  in
  let line row =
    String.concat "  " (List.init ncols (fun i -> pad (col_align i) widths.(i) (cell row i)))
  in
  let rule =
    String.concat "  " (List.init ncols (fun i -> String.make widths.(i) '-'))
  in
  let body = List.map line rows in
  String.concat "\n" ((line header :: rule :: body) @ [ "" ])

let print ?align ~header rows = print_string (render ?align ~header rows)

let fmt_f ?(digits = 3) x =
  if Float.is_nan x then "-" else Printf.sprintf "%.*f" digits x

let fmt_ms x = if Float.is_nan x then "-" else Printf.sprintf "%.2f" (x *. 1000.0)

let fmt_pct x = if Float.is_nan x then "-" else Printf.sprintf "%.1f" (x *. 100.0)
