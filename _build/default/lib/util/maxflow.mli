(** Maximum flow / minimum cut on small directed graphs (Edmonds–Karp).

    Used by the DAG partitioner: the optimal device/server split of a layer
    graph reduces to a minimum s–t cut.  Graphs here are tiny (hundreds of
    nodes), so the O(V·E²) bound is irrelevant. *)

type t

val create : n:int -> t
(** A flow network on vertices [0, n). @raise Invalid_argument if n <= 0. *)

val add_edge : t -> src:int -> dst:int -> capacity:float -> unit
(** Add a directed edge.  Parallel edges accumulate.  [infinity] capacities
    are supported (used to encode hard constraints).
    @raise Invalid_argument on out-of-range vertices, self-loops, or
    negative capacity. *)

val max_flow : t -> source:int -> sink:int -> float
(** Runs Edmonds–Karp and returns the max-flow value (= min-cut capacity).
    Mutates the network's residuals; call once per network. *)

val min_cut_side : t -> source:int -> bool array
(** After {!max_flow}: vertices still reachable from the source in the
    residual network — the source side of a minimum cut. *)
