(** Streaming and batch statistics used by the simulator's metric collection
    and the benchmark harness. *)

(** {1 Streaming accumulator (Welford)} *)

type t
(** Mutable accumulator of a stream of floats. *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** Mean of the observations; [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [0.] with fewer than two observations. *)

val stddev : t -> float
val min : t -> float
val max : t -> float
val sum : t -> float

val merge : t -> t -> t
(** [merge a b] is a fresh accumulator equivalent to having seen both
    streams (Chan et al. parallel update). *)

(** {1 Batch helpers} *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,100]; linear interpolation between
    order statistics.  The input array is not modified.
    @raise Invalid_argument on an empty array or p outside [0,100]. *)

val median : float array -> float
val mean_of : float array -> float
val stddev_of : float array -> float

val cdf_points : float array -> int -> (float * float) list
(** [cdf_points xs n] returns [n+1] (value, cumulative-probability) points
    of the empirical CDF, suitable for plotting. *)

val confidence_interval_95 : float array -> float * float
(** Normal-approximation 95% CI of the mean: (lo, hi). *)

val histogram : float array -> bins:int -> (float * int) array
(** [(bin_left_edge, count)] pairs over [bins] equal-width bins. *)

val jain_index : float array -> float
(** Jain's fairness index (Σx)²/(n·Σx²) over non-negative allocations:
    1 when perfectly equal, → 1/n under maximal skew.  [nan] on an empty
    array. @raise Invalid_argument on negative entries. *)
