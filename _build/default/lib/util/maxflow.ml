(* Adjacency-list residual network: each directed edge is stored with its
   reverse edge; [edges.(i)] holds (destination, edge id) pairs and the
   residual capacities live in [cap]. *)

type t = {
  n : int;
  mutable cap : float array;
  mutable dst : int array;
  mutable n_edges : int;
  adj : int list array;  (* per vertex: edge ids, reversed order *)
}

let create ~n =
  if n <= 0 then invalid_arg "Maxflow.create: n must be positive";
  {
    n;
    cap = Array.make 16 0.0;
    dst = Array.make 16 0;
    n_edges = 0;
    adj = Array.make n [];
  }

let grow t =
  let len = Array.length t.cap in
  let cap' = Array.make (2 * len) 0.0 in
  let dst' = Array.make (2 * len) 0 in
  Array.blit t.cap 0 cap' 0 len;
  Array.blit t.dst 0 dst' 0 len;
  t.cap <- cap';
  t.dst <- dst'

let push_edge t v capacity =
  if t.n_edges = Array.length t.cap then grow t;
  t.cap.(t.n_edges) <- capacity;
  t.dst.(t.n_edges) <- v;
  t.n_edges <- t.n_edges + 1

let add_edge t ~src ~dst ~capacity =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Maxflow.add_edge: vertex out of range";
  if src = dst then invalid_arg "Maxflow.add_edge: self-loop";
  if capacity < 0.0 then invalid_arg "Maxflow.add_edge: negative capacity";
  (* Forward edge id e, reverse edge id e+1. *)
  t.adj.(src) <- t.n_edges :: t.adj.(src);
  push_edge t dst capacity;
  t.adj.(dst) <- t.n_edges :: t.adj.(dst);
  push_edge t src 0.0

let bfs t ~source ~sink parent_edge =
  Array.fill parent_edge 0 t.n (-1);
  parent_edge.(source) <- -2;
  let q = Queue.create () in
  Queue.add source q;
  let found = ref false in
  while (not !found) && not (Queue.is_empty q) do
    let u = Queue.take q in
    List.iter
      (fun e ->
        let v = t.dst.(e) in
        if parent_edge.(v) = -1 && t.cap.(e) > 1e-12 then begin
          parent_edge.(v) <- e;
          if v = sink then found := true else Queue.add v q
        end)
      t.adj.(u)
  done;
  !found

let max_flow t ~source ~sink =
  if source = sink then invalid_arg "Maxflow.max_flow: source = sink";
  let parent_edge = Array.make t.n (-1) in
  let total = ref 0.0 in
  while bfs t ~source ~sink parent_edge do
    (* Bottleneck along the path (walk back via reverse edges: the reverse
       of edge e is e lxor 1). *)
    let bottleneck = ref infinity in
    let v = ref sink in
    while !v <> source do
      let e = parent_edge.(!v) in
      bottleneck := Float.min !bottleneck t.cap.(e);
      v := t.dst.(e lxor 1)
    done;
    let v = ref sink in
    while !v <> source do
      let e = parent_edge.(!v) in
      t.cap.(e) <- t.cap.(e) -. !bottleneck;
      t.cap.(e lxor 1) <- t.cap.(e lxor 1) +. !bottleneck;
      v := t.dst.(e lxor 1)
    done;
    total := !total +. !bottleneck
  done;
  !total

let min_cut_side t ~source =
  let side = Array.make t.n false in
  let q = Queue.create () in
  side.(source) <- true;
  Queue.add source q;
  while not (Queue.is_empty q) do
    let u = Queue.take q in
    List.iter
      (fun e ->
        let v = t.dst.(e) in
        if (not side.(v)) && t.cap.(e) > 1e-12 then begin
          side.(v) <- true;
          Queue.add v q
        end)
      t.adj.(u)
  done;
  side
