(** Small numeric helpers shared across the optimizer and cost models. *)

val clamp : lo:float -> hi:float -> float -> float
(** Restrict a value to [lo, hi]. *)

val lerp : float -> float -> float -> float
(** [lerp a b t] = a + t·(b−a). *)

val interp1 : (float * float) array -> float -> float
(** Piecewise-linear interpolation through sorted (x, y) knots; clamps
    outside the knot range.  @raise Invalid_argument on an empty array. *)

val bisect :
  ?tol:float -> ?max_iter:int -> lo:float -> hi:float -> (float -> bool) -> float
(** [bisect ~lo ~hi pred] finds the smallest [x] in [lo, hi] with [pred x]
    true, assuming [pred] is monotone (false … false true … true).  Returns
    [hi] if [pred] is false everywhere on the interval.  Used by the min-max
    allocator's bisection on the latency bound. *)

val sum_by : ('a -> float) -> 'a list -> float

val argmin_by : ('a -> float) -> 'a list -> 'a option
(** First element minimizing the key. *)

val argmax_by : ('a -> float) -> 'a list -> 'a option

val float_equal : ?eps:float -> float -> float -> bool
(** Approximate equality with absolute+relative tolerance (default 1e-9). *)

val mbps : float -> float
(** Megabits per second → bytes per second. *)

val gflops : float -> float
(** GigaFLOPs → FLOPs (scalar multiply by 1e9). *)

val ms : float -> float
(** Milliseconds → seconds. *)
