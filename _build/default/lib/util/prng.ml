type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 core step (Steele, Lea, Flood 2014). *)
let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = bits64 t in
  { state = s }

(* OCaml's native int has 63 bits; shifting by 2 keeps the value in
   [0, 2^62), safely non-negative after Int64.to_int. *)
let nonneg t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec loop () =
    let r = nonneg t in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then loop () else v
  in
  loop ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits into [0,1). *)
  let b = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float b /. 9007199254740992.0 *. bound

let float_in t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t rate =
  if rate <= 0.0 then invalid_arg "Prng.exponential: rate must be positive";
  let u = 1.0 -. float t 1.0 in
  -.log u /. rate

let normal t ~mu ~sigma =
  let u1 = 1.0 -. float t 1.0 in
  let u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let lognormal t ~mu ~sigma = exp (normal t ~mu ~sigma)

let pareto t ~shape ~scale =
  if shape <= 0.0 || scale <= 0.0 then invalid_arg "Prng.pareto: parameters must be positive";
  let u = 1.0 -. float t 1.0 in
  scale /. (u ** (1.0 /. shape))

let choice t a =
  if Array.length a = 0 then invalid_arg "Prng.choice: empty array";
  a.(int t (Array.length a))

let weighted_choice t a =
  if Array.length a = 0 then invalid_arg "Prng.weighted_choice: empty array";
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 a in
  if total <= 0.0 then invalid_arg "Prng.weighted_choice: non-positive total weight";
  let x = float t total in
  let rec go i acc =
    if i = Array.length a - 1 then fst a.(i)
    else
      let acc = acc +. snd a.(i) in
      if x < acc then fst a.(i) else go (i + 1) acc
  in
  go 0 0.0

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k > n || k < 0 then invalid_arg "Prng.sample_without_replacement";
  let pool = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = int_in t i (n - 1) in
    let tmp = pool.(i) in
    pool.(i) <- pool.(j);
    pool.(j) <- tmp
  done;
  Array.sub pool 0 k
