(** Binary min-heap keyed by float priority.

    Backbone of the discrete-event simulator's future-event list and of the
    greedy assignment algorithms.  Amortized O(log n) insert / pop. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push h prio v] inserts [v] with priority [prio]; smaller pops first.
    Ties pop in insertion order (the heap is stabilized with a sequence
    number), which makes simulations deterministic. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority element. *)

val pop_exn : 'a t -> float * 'a
(** @raise Invalid_argument when empty. *)

val peek : 'a t -> (float * 'a) option

val clear : 'a t -> unit

val to_sorted_list : 'a t -> (float * 'a) list
(** Non-destructive: elements in priority order (copies the heap). *)
