(** Plain-text table rendering for the benchmark harness.

    Every reproduced table/figure is printed as an aligned text table (rows =
    sweep points or CDF samples, columns = policies/metrics), matching the
    "same rows/series the paper reports" requirement. *)

type align = Left | Right

val render : ?align:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays out the rows under the header with column
    separators and a rule under the header.  Missing cells are blank; the
    default alignment is [Right] for every column. *)

val print : ?align:align list -> header:string list -> string list list -> unit
(** [render] followed by [print_string]. *)

val fmt_f : ?digits:int -> float -> string
(** Fixed-point float formatting, default 3 digits; renders [nan] as "-". *)

val fmt_ms : float -> string
(** Seconds rendered as milliseconds with 2 digits, e.g. ["12.34"]. *)

val fmt_pct : float -> string
(** Fraction rendered as a percentage with 1 digit, e.g. ["97.5"]. *)
