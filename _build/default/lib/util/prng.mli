(** Deterministic, splittable pseudo-random number generator.

    EdgeSurgeon needs reproducible experiments: every workload generator,
    simulator and optimizer draws randomness through this module so a run is
    fully determined by its seed.  The implementation is SplitMix64, which is
    fast, has a 64-bit state, and supports cheap stream splitting. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator.  Two generators created with the
    same seed produce identical streams. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy evolves independently. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    (with overwhelming probability) independent of [t]'s. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform on [0, bound).  @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform on [lo, hi] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform on [0, bound). *)

val float_in : t -> float -> float -> float
(** [float_in t lo hi] is uniform on [lo, hi). *)

val bool : t -> bool
(** Fair coin. *)

val exponential : t -> float -> float
(** [exponential t rate] draws from Exp(rate); mean [1/rate]. *)

val normal : t -> mu:float -> sigma:float -> float
(** Gaussian via Box–Muller. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** [exp] of a Gaussian draw with the given log-space parameters. *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto distribution, heavy-tailed; [scale] is the minimum value. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val weighted_choice : t -> ('a * float) array -> 'a
(** Element drawn with probability proportional to its weight.
    @raise Invalid_argument on an empty array or non-positive total weight. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] draws [k] distinct ints from
    [0, n). @raise Invalid_argument if [k > n]. *)
