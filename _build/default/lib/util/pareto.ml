let dominates a b =
  let n = Array.length a in
  if n <> Array.length b then invalid_arg "Pareto.dominates: dimension mismatch";
  let no_worse = ref true in
  let strictly = ref false in
  for i = 0 to n - 1 do
    if a.(i) > b.(i) then no_worse := false;
    if a.(i) < b.(i) then strictly := true
  done;
  !no_worse && !strictly

let frontier key items =
  let keyed = List.map (fun x -> (key x, x)) items in
  let non_dominated (k, _) =
    not (List.exists (fun (k', _) -> dominates k' k) keyed)
  in
  (* Keep one representative among exact duplicates: the first occurrence. *)
  let rec dedup seen = function
    | [] -> []
    | ((k, _) as item) :: rest ->
        if List.exists (fun k' -> k' = k) seen then dedup seen rest
        else item :: dedup (k :: seen) rest
  in
  dedup [] (List.filter non_dominated keyed) |> List.map snd

let frontier_arr key items = Array.of_list (frontier key (Array.to_list items))
