let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let lerp a b t = a +. (t *. (b -. a))

let interp1 knots x =
  let n = Array.length knots in
  if n = 0 then invalid_arg "Numeric.interp1: empty knots";
  if x <= fst knots.(0) then snd knots.(0)
  else if x >= fst knots.(n - 1) then snd knots.(n - 1)
  else begin
    (* Binary search for the bracketing interval. *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if fst knots.(mid) <= x then lo := mid else hi := mid
    done;
    let x0, y0 = knots.(!lo) and x1, y1 = knots.(!hi) in
    if x1 = x0 then y0 else lerp y0 y1 ((x -. x0) /. (x1 -. x0))
  end

let bisect ?(tol = 1e-9) ?(max_iter = 200) ~lo ~hi pred =
  if pred lo then lo
  else begin
    let lo = ref lo and hi = ref hi in
    let i = ref 0 in
    while !hi -. !lo > tol && !i < max_iter do
      let mid = 0.5 *. (!lo +. !hi) in
      if pred mid then hi := mid else lo := mid;
      incr i
    done;
    !hi
  end

let sum_by f l = List.fold_left (fun acc x -> acc +. f x) 0.0 l

let argmin_by key = function
  | [] -> None
  | x :: rest ->
      let best, _ =
        List.fold_left
          (fun (b, kb) y ->
            let ky = key y in
            if ky < kb then (y, ky) else (b, kb))
          (x, key x) rest
      in
      Some best

let argmax_by key l = argmin_by (fun x -> -.key x) l

let float_equal ?(eps = 1e-9) a b =
  let diff = Float.abs (a -. b) in
  diff <= eps || diff <= eps *. Float.max (Float.abs a) (Float.abs b)

let mbps x = x *. 1e6 /. 8.0
let gflops x = x *. 1e9
let ms x = x /. 1000.0
