lib/util/pareto.mli:
