lib/util/table.mli:
