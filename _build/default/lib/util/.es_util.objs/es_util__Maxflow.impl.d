lib/util/maxflow.ml: Array Float List Queue
