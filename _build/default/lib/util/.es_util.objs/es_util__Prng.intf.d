lib/util/prng.mli:
