lib/util/stats.mli:
