lib/util/heap.mli:
