lib/util/pareto.ml: Array List
