lib/util/maxflow.mli:
