lib/util/numeric.mli:
