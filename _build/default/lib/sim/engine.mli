(** Discrete-event simulation core: a clock and a time-ordered event list.

    Events scheduled for the same instant fire in scheduling order (the
    underlying heap is stabilized), so runs are fully deterministic. *)

type t

val create : unit -> t

val now : t -> float

val schedule : t -> float -> (unit -> unit) -> unit
(** [schedule t delay f] fires [f] at [now t +. delay].
    @raise Invalid_argument on negative delay. *)

val schedule_at : t -> float -> (unit -> unit) -> unit
(** Absolute-time variant; clamps to the current time if in the past. *)

val run : ?until:float -> t -> unit
(** Drain events until the list is empty or the clock passes [until]
    (events scheduled beyond the horizon stay unexecuted but the clock stops
    at [until]). *)

val pending : t -> int
