lib/sim/station.mli: Engine
