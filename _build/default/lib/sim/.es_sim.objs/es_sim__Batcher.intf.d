lib/sim/batcher.mli: Engine
