lib/sim/runner.mli: Es_edge Es_util Metrics
