lib/sim/batcher.ml: Array Engine Queue
