lib/sim/engine.mli:
