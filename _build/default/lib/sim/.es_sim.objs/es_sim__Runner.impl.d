lib/sim/runner.ml: Array Batcher Cluster Decision Engine Es_edge Es_surgery Es_util Float Link List Metrics Plan Printf Processor Station
