lib/sim/metrics.ml: Array Es_util Float Format List Printf String
