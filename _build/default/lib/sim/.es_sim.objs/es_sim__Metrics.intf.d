lib/sim/metrics.mli: Es_util Format
