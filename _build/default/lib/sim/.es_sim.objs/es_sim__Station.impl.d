lib/sim/station.ml: Engine Queue
