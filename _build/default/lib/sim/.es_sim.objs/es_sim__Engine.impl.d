lib/sim/engine.ml: Es_util Float
