(** Batched service station — a GPU-style server queue.

    Real inference servers batch requests: a batch of [k] items costs less
    than [k] sequential executions because the kernel launches amortize and
    the GPU fills.  The model: jobs accumulate until either [max_batch] are
    waiting or [window_s] elapses after the first queued arrival; the batch
    then executes for

      (Σ work_i) · ((1 − α) + α / k) / speed

    seconds — [α] is the parallelizable fraction (0 = no benefit, 0.7 ≈
    3.3× per-item speedup at large batches).  One batch runs at a time;
    jobs arriving mid-batch wait for the next one.

    This replaces the per-device dedicated-share stations when the
    simulator runs in batching mode ({!Runner.options}); compute shares are
    ignored there because the whole accelerator serves one batch queue. *)

type t

val create :
  Engine.t ->
  ?max_batch:int ->
  ?window_s:float ->
  ?alpha:float ->
  speed:float ->
  unit ->
  t
(** Defaults: [max_batch = 8], [window_s = 5e-3], [alpha = 0.7].
    @raise Invalid_argument on non-positive speed/batch/window or α outside
    [0, 1). *)

val submit : t -> work:float -> (unit -> unit) -> unit
(** Enqueue a job of [work] units; the callback fires when its batch
    completes. *)

val queue_length : t -> int
val busy_time : t -> float
val completed : t -> int
val batches : t -> int
(** Number of batches launched — [completed / batches] is the realized mean
    batch size. *)
