type job = { work : float; k : unit -> unit }

type t = {
  engine : Engine.t;
  max_batch : int;
  window_s : float;
  alpha : float;
  speed : float;
  waiting : job Queue.t;
  mutable busy : bool;
  mutable deadline_armed : bool;
  mutable busy_total : float;
  mutable n_completed : int;
  mutable n_batches : int;
}

let create engine ?(max_batch = 8) ?(window_s = 5e-3) ?(alpha = 0.7) ~speed () =
  if speed <= 0.0 then invalid_arg "Batcher.create: non-positive speed";
  if max_batch <= 0 then invalid_arg "Batcher.create: non-positive max_batch";
  if window_s <= 0.0 then invalid_arg "Batcher.create: non-positive window";
  if alpha < 0.0 || alpha >= 1.0 then invalid_arg "Batcher.create: alpha outside [0,1)";
  {
    engine;
    max_batch;
    window_s;
    alpha;
    speed;
    waiting = Queue.create ();
    busy = false;
    deadline_armed = false;
    busy_total = 0.0;
    n_completed = 0;
    n_batches = 0;
  }

let rec launch t =
  let k = min t.max_batch (Queue.length t.waiting) in
  if k > 0 && not t.busy then begin
    t.busy <- true;
    t.n_batches <- t.n_batches + 1;
    let jobs = Array.init k (fun _ -> Queue.take t.waiting) in
    let total_work = Array.fold_left (fun acc j -> acc +. j.work) 0.0 jobs in
    let efficiency = 1.0 -. t.alpha +. (t.alpha /. float_of_int k) in
    let service = total_work *. efficiency /. t.speed in
    t.busy_total <- t.busy_total +. service;
    Engine.schedule t.engine service (fun () ->
        t.n_completed <- t.n_completed + k;
        Array.iter (fun j -> j.k ()) jobs;
        t.busy <- false;
        (* Back-to-back launch when a full batch is already waiting;
           otherwise re-arm the collection window. *)
        if Queue.length t.waiting >= t.max_batch then launch t
        else if not (Queue.is_empty t.waiting) then arm_window t)
  end

and arm_window t =
  if not t.deadline_armed then begin
    t.deadline_armed <- true;
    Engine.schedule t.engine t.window_s (fun () ->
        t.deadline_armed <- false;
        if not t.busy then launch t)
  end

let submit t ~work k =
  if work < 0.0 then invalid_arg "Batcher.submit: negative work";
  Queue.add { work; k } t.waiting;
  if (not t.busy) && Queue.length t.waiting >= t.max_batch then launch t
  else if not t.busy then arm_window t

let queue_length t = Queue.length t.waiting
let busy_time t = t.busy_total
let completed t = t.n_completed
let batches t = t.n_batches
