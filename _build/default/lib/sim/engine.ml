type t = { mutable clock : float; events : (unit -> unit) Es_util.Heap.t }

let create () = { clock = 0.0; events = Es_util.Heap.create () }

let now t = t.clock

let schedule t delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  Es_util.Heap.push t.events (t.clock +. delay) f

let schedule_at t time f = Es_util.Heap.push t.events (Float.max time t.clock) f

let run ?(until = infinity) t =
  let continue = ref true in
  while !continue do
    match Es_util.Heap.peek t.events with
    | None -> continue := false
    | Some (time, _) when time > until ->
        t.clock <- until;
        continue := false
    | Some _ ->
        let time, f = Es_util.Heap.pop_exn t.events in
        t.clock <- time;
        f ()
  done

let pending t = Es_util.Heap.length t.events
