(** Glue between the cluster model and the allocators: turn per-device
    surgery plans plus a device→server assignment into fully resourced
    {!Es_edge.Decision.t}s. *)

type allocator = Minmax_alloc | Sum_sqrt | Equal | Proportional

val item_of :
  Es_edge.Cluster.device -> server:Es_edge.Cluster.server -> Es_surgery.Plan.t -> Minmax.item
(** The allocator's view of one offloading device: fixed latency (device
    compute + RTT), transfer bits, server work at the assigned server's
    speed, deadline, radio peak, rate. *)

val allocate_server :
  allocator ->
  Es_edge.Cluster.t ->
  server:int ->
  (int * Es_surgery.Plan.t) list ->
  (int * Minmax.grant) list option
(** Allocate one server's bandwidth and compute among the given
    (device id, plan) pairs.  [None] when the chosen allocator is
    {!Minmax_alloc} and no stable allocation exists; the share-rule
    allocators always return grants (possibly unstable — the simulator will
    show the queues growing, which is the point of those baselines). *)

val decisions :
  allocator ->
  Es_edge.Cluster.t ->
  assignment:int array ->
  plans:Es_surgery.Plan.t array ->
  Es_edge.Decision.t array option
(** Full pipeline: group offloading devices per assigned server, allocate,
    and emit one decision per device (device-only plans get zero grants).
    [None] propagates an infeasible {!Minmax_alloc} server. *)
