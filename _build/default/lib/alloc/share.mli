(** Non-optimal bandwidth/compute sharing rules.

    These are the allocation policies the baselines use (and what the
    ablation compares the optimal {!Minmax} step against): equal split,
    demand-proportional split, and the square-root rule that is optimal for
    the *sum*-latency objective (by Cauchy–Schwarz, minimizing
    Σ w_i·(bits_i/b_i) under Σ b_i ≤ B gives b_i ∝ √(w_i·bits_i)). *)

val equal : bandwidth_bps:float -> Minmax.item list -> (int * Minmax.grant) list
(** Every offloading device gets [B/n] (capped at its radio peak) and [1/n]
    of the server. *)

val proportional : bandwidth_bps:float -> Minmax.item list -> (int * Minmax.grant) list
(** Shares proportional to each device's demand (bits, server work). *)

val sqrt_rule :
  ?weights:(Minmax.item -> float) ->
  bandwidth_bps:float ->
  Minmax.item list ->
  (int * Minmax.grant) list
(** Sum-latency-optimal square-root allocation; default weight is the
    request rate (minimizing aggregate latency per unit time).  Peak caps
    are honored by iterative clipping. *)
