open Minmax

let cap_and_redistribute ~budget raw caps =
  (* Proportional allocation with per-item caps: clip, then hand the excess
     to unclipped items; three passes make the residual negligible. *)
  let n = Array.length raw in
  let grant = Array.make n 0.0 in
  let remaining = ref budget in
  let active = Array.map (fun r -> r > 0.0) raw in
  for _ = 1 to 3 do
    let total_raw =
      ref 0.0
    in
    Array.iteri (fun i r -> if active.(i) && grant.(i) < caps.(i) then total_raw := !total_raw +. r) raw;
    if !total_raw > 0.0 && !remaining > 1e-9 then begin
      let budget_now = !remaining in
      Array.iteri
        (fun i r ->
          if active.(i) && grant.(i) < caps.(i) then begin
            let add = budget_now *. r /. !total_raw in
            let newg = Float.min caps.(i) (grant.(i) +. add) in
            remaining := !remaining -. (newg -. grant.(i));
            grant.(i) <- newg
          end)
        raw
    end
  done;
  grant

let build_grants ~bandwidth_bps items bw_demand share_demand =
  let items = Array.of_list items in
  let n = Array.length items in
  let bw_raw = Array.map bw_demand items in
  let caps = Array.map (fun it -> it.peak_bps) items in
  let bws = cap_and_redistribute ~budget:bandwidth_bps bw_raw caps in
  let share_raw = Array.map share_demand items in
  let share_total = Array.fold_left ( +. ) 0.0 share_raw in
  List.init n (fun i ->
      let share = if share_total > 0.0 then share_raw.(i) /. share_total else 0.0 in
      ( items.(i).key,
        { bandwidth_bps = bws.(i); compute_share = share } ))

let equal ~bandwidth_bps items =
  build_grants ~bandwidth_bps items
    (fun it -> if it.bits > 0.0 then 1.0 else 0.0)
    (fun it -> if it.work_s > 0.0 then 1.0 else 0.0)

let proportional ~bandwidth_bps items =
  build_grants ~bandwidth_bps items
    (fun it -> it.bits)
    (fun it -> it.work_s)

let sqrt_rule ?(weights = fun it -> it.rate) ~bandwidth_bps items =
  build_grants ~bandwidth_bps items
    (fun it -> sqrt (Float.max 0.0 (weights it) *. it.bits))
    (fun it -> sqrt (Float.max 0.0 (weights it) *. it.work_s))
