lib/alloc/admission.mli: Es_edge Es_surgery
