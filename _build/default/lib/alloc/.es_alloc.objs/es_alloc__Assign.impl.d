lib/alloc/assign.ml: Array Cluster Es_edge Es_surgery Float Plan Processor
