lib/alloc/assign.mli: Es_edge Es_surgery
