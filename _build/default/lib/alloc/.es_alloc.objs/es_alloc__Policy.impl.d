lib/alloc/policy.ml: Array Cluster Decision Es_edge Es_surgery Link List Minmax Option Plan Processor Share
