lib/alloc/minmax.mli:
