lib/alloc/share.ml: Array Float List Minmax
