lib/alloc/minmax.ml: Array Es_util Float List
