lib/alloc/admission.ml: Array Cluster Decision Es_edge Es_surgery Es_util Float Latency List Plan Policy Processor
