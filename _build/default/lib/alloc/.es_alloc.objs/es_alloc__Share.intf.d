lib/alloc/share.mli: Minmax
