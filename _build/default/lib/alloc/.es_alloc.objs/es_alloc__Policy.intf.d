lib/alloc/policy.mli: Es_edge Es_surgery Minmax
