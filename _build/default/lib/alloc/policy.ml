open Es_edge
open Es_surgery

type allocator = Minmax_alloc | Sum_sqrt | Equal | Proportional

let item_of (dev : Cluster.device) ~(server : Cluster.server) plan =
  let dev_time = Plan.device_time dev.Cluster.proc.Processor.perf plan in
  let rtt = if Plan.is_device_only plan then 0.0 else dev.Cluster.link.Link.rtt_s in
  {
    Minmax.key = dev.Cluster.dev_id;
    fixed_s = dev_time +. rtt;
    bits = 8.0 *. (Plan.transfer_bytes plan +. Plan.result_bytes plan);
    work_s = Plan.server_time server.Cluster.sproc.Processor.perf plan;
    deadline_s = dev.Cluster.deadline;
    peak_bps = dev.Cluster.link.Link.peak_bps;
    rate = dev.Cluster.rate;
  }

let allocate_server allocator cluster ~server pairs =
  let srv = cluster.Cluster.servers.(server) in
  let items =
    List.map
      (fun (dev_id, plan) -> item_of cluster.Cluster.devices.(dev_id) ~server:srv plan)
      pairs
  in
  let bandwidth_bps = srv.Cluster.ap_bandwidth_bps in
  match allocator with
  | Minmax_alloc ->
      Option.map (fun r -> r.Minmax.grants) (Minmax.solve ~bandwidth_bps items)
  | Sum_sqrt -> Some (Share.sqrt_rule ~bandwidth_bps items)
  | Equal -> Some (Share.equal ~bandwidth_bps items)
  | Proportional -> Some (Share.proportional ~bandwidth_bps items)

let decisions allocator cluster ~assignment ~plans =
  let nd = Cluster.n_devices cluster and ns = Cluster.n_servers cluster in
  if Array.length assignment <> nd || Array.length plans <> nd then
    invalid_arg "Policy.decisions: assignment/plans must cover every device";
  let per_server = Array.make ns [] in
  Array.iteri
    (fun dev_id plan ->
      if not (Plan.is_device_only plan) then begin
        let s = assignment.(dev_id) in
        if s < 0 || s >= ns then invalid_arg "Policy.decisions: server out of range";
        per_server.(s) <- (dev_id, plan) :: per_server.(s)
      end)
    plans;
  let grants = Array.make nd None in
  let rec run s =
    if s >= ns then true
    else begin
      match per_server.(s) with
      | [] -> run (s + 1)
      | pairs -> (
          match allocate_server allocator cluster ~server:s (List.rev pairs) with
          | None -> false
          | Some gs ->
              List.iter (fun (k, g) -> grants.(k) <- Some g) gs;
              run (s + 1))
    end
  in
  if not (run 0) then None
  else
    Some
      (Array.init nd (fun dev_id ->
           let plan = plans.(dev_id) in
           if Plan.is_device_only plan then
             Decision.make ~device:dev_id ~server:(max 0 assignment.(dev_id)) ~plan ()
           else begin
             match grants.(dev_id) with
             | Some g ->
                 Decision.make ~device:dev_id ~server:assignment.(dev_id) ~plan
                   ~bandwidth_bps:g.Minmax.bandwidth_bps
                   ~compute_share:g.Minmax.compute_share ()
             | None ->
                 invalid_arg "Policy.decisions: allocator returned no grant for a device"
           end))
