(** Device→server assignment.

    Assignment is the combinatorial part of the joint problem (generalized
    assignment — NP-hard), handled with the usual pairing of a greedy
    load-balancing construction and an improving local search over
    single-device moves and pairwise swaps. *)

val balanced_greedy :
  Es_edge.Cluster.t -> plans:Es_surgery.Plan.t array -> int array
(** Devices in decreasing demand order; each goes to the server with the
    lowest resulting load, where a server's load is the maximum of its
    normalized compute load (Σ λ·work / capacity-equivalent) and its AP
    bandwidth load (Σ λ·bits / B).  Device-only plans are assigned to the
    least-loaded server (their assignment is inert). *)

val local_search :
  ?max_passes:int ->
  n_servers:int ->
  eval:(int array -> float) ->
  int array ->
  int array
(** Hill-climb on [eval] (lower is better): try moving each device to every
    other server, then swapping pairs, keeping improvements; stops at a local
    optimum or after [max_passes] (default 3).  The input array is not
    mutated. *)
