type breakdown = { compute_j : float; tx_j : float; wait_j : float; rx_j : float }

let breakdown cluster (d : Decision.t) =
  let dev = cluster.Cluster.devices.(d.Decision.device) in
  let p = dev.Cluster.proc.Processor.power in
  let l = Latency.breakdown cluster d in
  {
    compute_j = p.Processor.busy_w *. l.Latency.device_s;
    tx_j = p.Processor.tx_w *. l.Latency.uplink_s;
    wait_j = p.Processor.idle_w *. l.Latency.server_s;
    rx_j = p.Processor.rx_w *. l.Latency.downlink_s;
  }

let total b = b.compute_j +. b.tx_j +. b.wait_j +. b.rx_j

let per_request cluster d = total (breakdown cluster d)

let mean_power_w cluster (d : Decision.t) =
  let dev = cluster.Cluster.devices.(d.Decision.device) in
  dev.Cluster.rate *. per_request cluster d

let fleet_joules_per_s cluster decisions =
  Array.fold_left (fun acc d -> acc +. mean_power_w cluster d) 0.0 decisions

let server_joules cluster (d : Decision.t) =
  if not (Decision.offloads d) then 0.0
  else begin
    let srv = cluster.Cluster.servers.(d.Decision.server) in
    let l = Latency.breakdown cluster d in
    srv.Cluster.sproc.Processor.power.Processor.busy_w *. l.Latency.server_s
  end
