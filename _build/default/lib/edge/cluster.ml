type device = {
  dev_id : int;
  dev_name : string;
  proc : Processor.t;
  link : Link.t;
  model : Es_dnn.Graph.t;
  rate : float;
  deadline : float;
  accuracy_floor : float;
}

type server = {
  srv_id : int;
  srv_name : string;
  sproc : Processor.t;
  ap_bandwidth_bps : float;
}

type t = { devices : device array; servers : server array }

let device ~id ?name ~proc ~link ~model ~rate ~deadline ?(accuracy_floor = 0.0) () =
  if rate <= 0.0 then invalid_arg "Cluster.device: non-positive rate";
  if deadline <= 0.0 then invalid_arg "Cluster.device: non-positive deadline";
  let dev_name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "dev%d(%s,%s)" id proc.Processor.name model.Es_dnn.Graph.name
  in
  { dev_id = id; dev_name; proc; link; model; rate; deadline; accuracy_floor }

let server ~id ?name ~proc ~ap_bandwidth_mbps () =
  if ap_bandwidth_mbps <= 0.0 then invalid_arg "Cluster.server: non-positive AP bandwidth";
  let srv_name =
    match name with Some n -> n | None -> Printf.sprintf "srv%d(%s)" id proc.Processor.name
  in
  { srv_id = id; srv_name; sproc = proc; ap_bandwidth_bps = ap_bandwidth_mbps *. 1e6 }

let make ~devices ~servers =
  if devices = [] then invalid_arg "Cluster.make: no devices";
  if servers = [] then invalid_arg "Cluster.make: no servers";
  let devices =
    Array.of_list devices |> Array.mapi (fun i d -> { d with dev_id = i })
  in
  let servers =
    Array.of_list servers |> Array.mapi (fun i s -> { s with srv_id = i })
  in
  { devices; servers }

let n_devices t = Array.length t.devices
let n_servers t = Array.length t.servers

let pp_summary fmt t =
  Format.fprintf fmt "cluster: %d devices, %d servers@." (n_devices t) (n_servers t);
  Array.iter
    (fun s ->
      Format.fprintf fmt "  %s  ap=%.0f Mbps@." s.srv_name (s.ap_bandwidth_bps /. 1e6))
    t.servers;
  Array.iter
    (fun d ->
      Format.fprintf fmt "  %-28s %s rate=%.1f/s deadline=%.0fms acc>=%.2f@." d.dev_name
        d.link.Link.name d.rate (d.deadline *. 1000.0) d.accuracy_floor)
    t.devices
