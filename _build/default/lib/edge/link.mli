(** Wireless / wired link models.

    A link carries the device↔server traffic.  [peak_bps] caps the rate a
    single device can reach even when granted the whole access point;
    bandwidth allocation then assigns each device a share of the AP's
    capacity up to this cap.  The optional fading factor (applied by the
    online simulator) draws a per-transfer multiplicative rate degradation,
    standing in for real wireless variability. *)

type t = {
  name : string;
  peak_bps : float;  (** physical-layer ceiling for one device *)
  rtt_s : float;  (** round-trip propagation + protocol latency *)
  fading_sigma : float;  (** log-normal sigma of rate degradation; 0 = none *)
}

val make : name:string -> peak_mbps:float -> rtt_ms:float -> ?fading_sigma:float -> unit -> t

val wifi : t
(** 802.11ac-class: 120 Mbps peak, 4 ms RTT, moderate fading. *)

val lte : t
(** LTE uplink: 25 Mbps, 30 ms RTT, strong fading. *)

val nr5g : t
(** 5G NR: 300 Mbps, 8 ms RTT. *)

val ethernet : t
(** Wired 1 Gbps, 0.5 ms RTT, no fading. *)

val transfer_time : t -> rate_bps:float -> float -> float
(** [transfer_time link ~rate_bps bytes] — seconds to move [bytes] at the
    granted [rate_bps] (capped at [peak_bps]) plus half an RTT.  Zero bytes
    cost nothing. *)

val effective_rate : Es_util.Prng.t -> t -> float -> float
(** [effective_rate rng link rate] applies a random fading draw. *)
