type power = { idle_w : float; busy_w : float; tx_w : float; rx_w : float }

type t = {
  name : string;
  perf : Es_dnn.Profile.perf;
  power : power;
  mem_bytes : float;
}

let default_power = { idle_w = 1.0; busy_w = 4.0; tx_w = 1.2; rx_w = 0.8 }

let make ~name ~gflops ~mem_gbps ~overhead_us ?(power = default_power) ?(mem_gb = 2.0) () =
  {
    name;
    perf =
      Es_dnn.Profile.perf ~flops_per_s:(gflops *. 1e9) ~mem_bytes_per_s:(mem_gbps *. 1e9)
        ~layer_overhead_s:(overhead_us *. 1e-6);
    power;
    mem_bytes = mem_gb *. 1e9;
  }

(* Device-class power figures follow published board measurements (RPi 4
   ~3-6 W busy, Jetson Nano 5-10 W, TX2 7-15 W, phone SoC 2-4 W sustained);
   radios at WiFi/LTE-class transmit powers. *)

let iot_board =
  make ~name:"iot_board" ~gflops:4.0 ~mem_gbps:3.0 ~overhead_us:60.0
    ~power:{ idle_w = 0.8; busy_w = 2.5; tx_w = 0.9; rx_w = 0.6 }
    ~mem_gb:0.5 ()

let raspberry_pi =
  make ~name:"raspberry_pi" ~gflops:8.0 ~mem_gbps:4.0 ~overhead_us:40.0
    ~power:{ idle_w = 1.5; busy_w = 5.5; tx_w = 1.1; rx_w = 0.7 }
    ~mem_gb:2.0 ()

let smartphone =
  make ~name:"smartphone" ~gflops:40.0 ~mem_gbps:12.0 ~overhead_us:25.0
    ~power:{ idle_w = 0.6; busy_w = 3.5; tx_w = 1.4; rx_w = 0.9 }
    ~mem_gb:4.0 ()

let jetson_nano =
  make ~name:"jetson_nano" ~gflops:120.0 ~mem_gbps:20.0 ~overhead_us:15.0
    ~power:{ idle_w = 2.0; busy_w = 9.0; tx_w = 1.2; rx_w = 0.8 }
    ~mem_gb:4.0 ()

let jetson_tx2 =
  make ~name:"jetson_tx2" ~gflops:400.0 ~mem_gbps:40.0 ~overhead_us:12.0
    ~power:{ idle_w = 3.0; busy_w = 14.0; tx_w = 1.2; rx_w = 0.8 }
    ~mem_gb:8.0 ()

let device_classes = [| iot_board; raspberry_pi; smartphone; jetson_nano; jetson_tx2 |]

let server_power = { idle_w = 60.0; busy_w = 250.0; tx_w = 0.0; rx_w = 0.0 }

let edge_cpu =
  make ~name:"edge_cpu" ~gflops:600.0 ~mem_gbps:80.0 ~overhead_us:8.0 ~power:server_power
    ~mem_gb:64.0 ()

let edge_gpu_small =
  make ~name:"edge_gpu_small" ~gflops:2500.0 ~mem_gbps:250.0 ~overhead_us:6.0
    ~power:server_power ~mem_gb:32.0 ()

let edge_gpu =
  make ~name:"edge_gpu" ~gflops:6000.0 ~mem_gbps:450.0 ~overhead_us:5.0 ~power:server_power
    ~mem_gb:64.0 ()

let server_classes = [| edge_cpu; edge_gpu_small; edge_gpu |]

let scaled p f =
  if f <= 0.0 then invalid_arg "Processor.scaled: non-positive factor";
  {
    p with
    name = Printf.sprintf "%s(x%.2f)" p.name f;
    perf =
      Es_dnn.Profile.perf
        ~flops_per_s:(p.perf.Es_dnn.Profile.flops_per_s *. f)
        ~mem_bytes_per_s:(p.perf.Es_dnn.Profile.mem_bytes_per_s *. f)
        ~layer_overhead_s:p.perf.Es_dnn.Profile.layer_overhead_s;
  }
