(** Processor classes of the heterogeneous edge.

    Sustained-throughput numbers are calibrated to the device classes used
    across the edge-inference literature (Raspberry Pi, Jetson boards,
    smartphones; CPU and GPU edge servers).  Only *relative* speeds matter
    to the reproduction — they set where partition points fall. *)

type power = {
  idle_w : float;  (** draw while waiting *)
  busy_w : float;  (** draw while computing *)
  tx_w : float;  (** radio transmit *)
  rx_w : float;  (** radio receive *)
}

type t = {
  name : string;
  perf : Es_dnn.Profile.perf;
  power : power;
  mem_bytes : float;  (** usable RAM for model weights + activations *)
}

val make :
  name:string ->
  gflops:float ->
  mem_gbps:float ->
  overhead_us:float ->
  ?power:power ->
  ?mem_gb:float ->
  unit ->
  t
(** Convenience constructor in engineering units (GFLOP/s, GB/s, µs, GB).
    Default power/memory fit a mid-size embedded board. *)

(** {1 End-device classes} *)

val iot_board : t
(** Cortex-A53-class IoT board, ~4 GFLOP/s sustained. *)

val raspberry_pi : t
(** Raspberry Pi 4 class, ~8 GFLOP/s. *)

val smartphone : t
(** Mid-range phone SoC with a small GPU/DSP, ~40 GFLOP/s. *)

val jetson_nano : t
(** Jetson Nano GPU, ~120 GFLOP/s sustained fp32. *)

val jetson_tx2 : t
(** Jetson TX2 GPU, ~400 GFLOP/s. *)

val device_classes : t array
(** All of the above, weakest first. *)

(** {1 Edge-server classes} *)

val edge_cpu : t
(** Many-core CPU server, ~600 GFLOP/s. *)

val edge_gpu_small : t
(** Entry GPU (GTX-1080-class), ~2.5 TFLOP/s sustained. *)

val edge_gpu : t
(** Server GPU (2080Ti/T4-class), ~6 TFLOP/s sustained. *)

val server_classes : t array

val scaled : t -> float -> t
(** [scaled p f] multiplies compute and memory throughput by [f]; used by
    the heterogeneity-skew experiments. *)
