lib/edge/energy.mli: Cluster Decision
