lib/edge/cluster.ml: Array Es_dnn Format Link Printf Processor
