lib/edge/processor.mli: Es_dnn
