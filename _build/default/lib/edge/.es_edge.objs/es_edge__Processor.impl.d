lib/edge/processor.ml: Es_dnn Printf
