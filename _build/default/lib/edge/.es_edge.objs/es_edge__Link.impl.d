lib/edge/link.ml: Es_util Float
