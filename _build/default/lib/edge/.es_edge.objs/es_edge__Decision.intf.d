lib/edge/decision.mli: Cluster Es_surgery Format
