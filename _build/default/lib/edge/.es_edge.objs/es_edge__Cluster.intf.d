lib/edge/cluster.mli: Es_dnn Format Link Processor
