lib/edge/latency.ml: Array Cluster Decision Es_surgery Float Link Plan Processor
