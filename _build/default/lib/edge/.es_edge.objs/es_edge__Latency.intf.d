lib/edge/latency.mli: Cluster Decision
