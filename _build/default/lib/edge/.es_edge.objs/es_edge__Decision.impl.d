lib/edge/decision.ml: Array Cluster Es_surgery Format Printf
