lib/edge/link.mli: Es_util
