lib/edge/scenario.ml: Array Cluster Es_dnn Es_surgery Es_util Hashtbl Link List Printf Processor
