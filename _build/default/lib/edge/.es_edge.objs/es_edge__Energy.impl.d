lib/edge/energy.ml: Array Cluster Decision Latency Processor
