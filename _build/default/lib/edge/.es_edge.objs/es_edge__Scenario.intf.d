lib/edge/scenario.mli: Cluster Link Processor
