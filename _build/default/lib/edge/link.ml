type t = { name : string; peak_bps : float; rtt_s : float; fading_sigma : float }

let make ~name ~peak_mbps ~rtt_ms ?(fading_sigma = 0.0) () =
  if peak_mbps <= 0.0 then invalid_arg "Link.make: non-positive rate";
  { name; peak_bps = peak_mbps *. 1e6; rtt_s = rtt_ms /. 1000.0; fading_sigma }

let wifi = make ~name:"wifi" ~peak_mbps:120.0 ~rtt_ms:4.0 ~fading_sigma:0.25 ()
let lte = make ~name:"lte" ~peak_mbps:25.0 ~rtt_ms:30.0 ~fading_sigma:0.4 ()
let nr5g = make ~name:"5g" ~peak_mbps:300.0 ~rtt_ms:8.0 ~fading_sigma:0.2 ()
let ethernet = make ~name:"ethernet" ~peak_mbps:1000.0 ~rtt_ms:0.5 ()

let transfer_time link ~rate_bps bytes =
  if bytes <= 0.0 then 0.0
  else begin
    let rate = Float.min rate_bps link.peak_bps in
    if rate <= 0.0 then invalid_arg "Link.transfer_time: non-positive rate";
    (bytes *. 8.0 /. rate) +. (link.rtt_s /. 2.0)
  end

let effective_rate rng link rate =
  if link.fading_sigma <= 0.0 then rate
  else begin
    (* Log-normal degradation with mean 1 capped at the nominal rate:
       mu = -sigma^2/2 gives E[factor] = 1. *)
    let sigma = link.fading_sigma in
    let factor = Es_util.Prng.lognormal rng ~mu:(-.sigma *. sigma /. 2.0) ~sigma in
    rate *. Float.min 1.0 factor
  end
