(** Device-side energy accounting.

    Battery draw is the second currency of edge inference (and the usual
    co-metric in this literature): offloading trades compute joules for
    radio joules.  The model integrates the device's power states over a
    request's analytic timeline:

      E = busy·t_compute + tx·t_uplink + idle·t_server_wait + rx·t_downlink

    Server energy is not billed to the device (the server draws from the
    wall), but {!server_joules} is exposed for operator-cost studies. *)

type breakdown = {
  compute_j : float;
  tx_j : float;
  wait_j : float;  (** idling while the server computes *)
  rx_j : float;
}

val breakdown : Cluster.t -> Decision.t -> breakdown
(** Per-request device energy in joules, from the analytic latency model. *)

val total : breakdown -> float

val per_request : Cluster.t -> Decision.t -> float

val mean_power_w : Cluster.t -> Decision.t -> float
(** Sustained inference power draw above idle: rate × per-request joules. *)

val fleet_joules_per_s : Cluster.t -> Decision.t array -> float
(** Aggregate device-side draw of a decision set (W). *)

val server_joules : Cluster.t -> Decision.t -> float
(** Energy billed to the server for one request: busy draw × server time. *)
