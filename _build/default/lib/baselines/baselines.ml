open Es_edge
open Es_surgery
open Es_alloc
open Es_joint

type t = { name : string; solve : Cluster.t -> Decision.t array }

let full_width = [ 1.0 ]
let full_depth = [ None ]
let fp32_only = [ Es_surgery.Precision.Fp32 ]

(* Allocation with a graceful fallback: proportional shares when the
   min-max allocator finds the load unstable (the baseline then simply
   performs badly in the simulator, which is the honest outcome). *)
let allocate_or_fallback allocator cluster ~assignment ~plans =
  match Policy.decisions allocator cluster ~assignment ~plans with
  | Some ds -> ds
  | None -> (
      match Policy.decisions Policy.Proportional cluster ~assignment ~plans with
      | Some ds -> ds
      | None -> assert false)

let fair_share_plans ?exits ?precisions ~widths cluster ~assignment =
  let nd = Cluster.n_devices cluster in
  (* Two passes: estimate shares from a full-offload population first, then
     pick plans under those estimates. *)
  let ns = Cluster.n_servers cluster in
  let per_server = Array.make ns 0 in
  Array.iter (fun s -> per_server.(s) <- per_server.(s) + 1) assignment;
  Array.init nd (fun device ->
      let s = assignment.(device) in
      let srv = cluster.Cluster.servers.(s) in
      let k = float_of_int (max 1 per_server.(s)) in
      Optimizer.best_plan_for_grants ?exits ?precisions ~widths cluster ~device ~server:s
        ~bandwidth_bps:(srv.Cluster.ap_bandwidth_bps /. k)
        ~compute_share:(1.0 /. k))

let local_best ?exits ~widths cluster device =
  let dev = cluster.Cluster.devices.(device) in
  let candidates =
    Candidate.pareto_candidates ?exits ~widths dev.Cluster.model
    |> List.filter (fun p ->
           Plan.is_device_only p
           && Plan.device_mem_bytes p <= dev.Cluster.proc.Processor.mem_bytes)
  in
  let acc_ok =
    List.filter
      (fun (p : Plan.t) -> p.Plan.accuracy >= dev.Cluster.accuracy_floor -. 1e-9)
      candidates
  in
  let pool = if acc_ok = [] then candidates else acc_ok in
  match
    Es_util.Numeric.argmin_by
      (fun p -> Plan.device_time dev.Cluster.proc.Processor.perf p)
      pool
  with
  | Some p -> p
  | None -> Plan.device_only dev.Cluster.model

let device_only =
  {
    name = "DeviceOnly";
    solve =
      (fun cluster ->
        Array.mapi
          (fun i (dev : Cluster.device) ->
            Decision.make ~device:i ~server:0 ~plan:(Plan.device_only dev.Cluster.model) ())
          cluster.Cluster.devices);
  }

let exit_local =
  {
    name = "ExitLocal";
    solve =
      (fun cluster ->
        Array.mapi
          (fun i _ ->
            let plan = local_best ~widths:Candidate.default_widths cluster i in
            Decision.make ~device:i ~server:0 ~plan ())
          cluster.Cluster.devices);
  }

let server_only =
  {
    name = "ServerOnly";
    solve =
      (fun cluster ->
        let plans =
          Array.map
            (fun (dev : Cluster.device) -> Plan.server_only dev.Cluster.model)
            cluster.Cluster.devices
        in
        let assignment = Assign.balanced_greedy cluster ~plans in
        allocate_or_fallback Policy.Equal cluster ~assignment ~plans);
  }

let neurosurgeon =
  {
    name = "Neurosurgeon";
    solve =
      (fun cluster ->
        let plans0 =
          Array.map
            (fun (dev : Cluster.device) -> Plan.server_only dev.Cluster.model)
            cluster.Cluster.devices
        in
        let assignment = Assign.balanced_greedy cluster ~plans:plans0 in
        let plans =
          fair_share_plans ~exits:full_depth ~precisions:fp32_only ~widths:full_width cluster
            ~assignment
        in
        allocate_or_fallback Policy.Equal cluster ~assignment ~plans);
  }

let surgery_only =
  {
    name = "SurgeryOnly";
    solve =
      (fun cluster ->
        let config = { Optimizer.default_config with allocator = Policy.Equal } in
        (Optimizer.solve ~config cluster).Optimizer.decisions);
  }

let alloc_only =
  {
    name = "AllocOnly";
    solve =
      (fun cluster ->
        let plans0 =
          Array.map
            (fun (dev : Cluster.device) -> Plan.server_only dev.Cluster.model)
            cluster.Cluster.devices
        in
        let assignment0 = Assign.balanced_greedy cluster ~plans:plans0 in
        let plans =
          fair_share_plans ~exits:full_depth ~precisions:fp32_only ~widths:full_width cluster
            ~assignment:assignment0
        in
        let greedy = Assign.balanced_greedy cluster ~plans in
        allocate_or_fallback Policy.Minmax_alloc cluster ~assignment:greedy ~plans);
  }

let random_policy seed =
  {
    name = "Random";
    solve =
      (fun cluster ->
        let rng = Es_util.Prng.create seed in
        let nd = Cluster.n_devices cluster and ns = Cluster.n_servers cluster in
        let plans =
          Array.init nd (fun i ->
              let dev = cluster.Cluster.devices.(i) in
              let candidates =
                Candidate.pareto_candidates dev.Cluster.model
                |> List.filter (fun (p : Plan.t) ->
                       p.Plan.accuracy >= dev.Cluster.accuracy_floor -. 1e-9)
              in
              match candidates with
              | [] -> Plan.device_only dev.Cluster.model
              | l -> Es_util.Prng.choice rng (Array.of_list l))
        in
        let assignment = Array.init nd (fun _ -> Es_util.Prng.int rng ns) in
        allocate_or_fallback Policy.Proportional cluster ~assignment ~plans);
  }

let edgesurgeon =
  {
    name = "EdgeSurgeon";
    solve = (fun cluster -> (Optimizer.solve cluster).Optimizer.decisions);
  }

let all ?(seed = 11) () =
  [
    device_only;
    exit_local;
    server_only;
    neurosurgeon;
    random_policy seed;
    surgery_only;
    alloc_only;
    edgesurgeon;
  ]
