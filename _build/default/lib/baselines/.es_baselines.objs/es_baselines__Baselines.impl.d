lib/baselines/baselines.ml: Array Assign Candidate Cluster Decision Es_alloc Es_edge Es_joint Es_surgery Es_util List Optimizer Plan Policy Processor
