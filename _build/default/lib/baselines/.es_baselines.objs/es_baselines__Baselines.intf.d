lib/baselines/baselines.mli: Es_edge Es_surgery
