(** Comparator policies.

    Every baseline is a function [Cluster.t -> Decision.t array] producing a
    decision set the simulator and the analytic model evaluate on identical
    footing with the joint optimizer.  Decision rules follow the published
    systems each baseline stands for:

    - {!device_only} — all inference local, unmodified model (the no-edge
      strawman every paper in this line opens with);
    - {!exit_local} — BranchyNet-style: local execution but with the best
      early exit/width meeting the device's accuracy floor;
    - {!server_only} — full offload of the raw input, equal resource split;
    - {!neurosurgeon} — partition-only: per-device latency-optimal cut of
      the unmodified model under fair-share resources, equal allocation
      (Kang et al., ASPLOS'17 decision rule);
    - {!surgery_only} — EdgeSurgeon's surgery loop but naive (equal)
      allocation: the first ablation arm;
    - {!alloc_only} — no surgery (Neurosurgeon cuts frozen) but optimal
      min-max allocation and assignment: the second ablation arm;
    - {!random_policy} — random accuracy-feasible plan, random server,
      demand-proportional allocation: the sanity floor. *)

type t = {
  name : string;
  solve : Es_edge.Cluster.t -> Es_edge.Decision.t array;
}

val device_only : t
val exit_local : t
val server_only : t
val neurosurgeon : t
val surgery_only : t
val alloc_only : t
val random_policy : int -> t
(** Seeded. *)

val edgesurgeon : t
(** The joint optimizer under its default configuration, packaged like the
    baselines so harnesses can iterate over one list. *)

val all : ?seed:int -> unit -> t list
(** Every policy above, EdgeSurgeon last. *)

val fair_share_plans :
  ?exits:int option list ->
  ?precisions:Es_surgery.Precision.t list ->
  widths:float list ->
  Es_edge.Cluster.t ->
  assignment:int array ->
  Es_surgery.Plan.t array
(** Helper used by several baselines: per-device best plan under fair-share
    grant estimates at the assigned server. *)
