(** Time-varying load profiles: global multipliers applied to every
    device's nominal request rate. *)

type t = float -> float

val constant : float -> t

val step_burst : start_s:float -> stop_s:float -> factor:float -> t
(** 1.0 outside the burst window, [factor] inside — the F10 flash-crowd
    shape. *)

val diurnal : period_s:float -> amplitude:float -> t
(** 1 + amplitude·sin(2πt/period), floored at 0.05. *)

val square_wave : period_s:float -> high:float -> low:float -> t
(** Alternates [high] and [low] every half period (an MMPP-like two-state
    modulated load). *)

val ramp : until_s:float -> peak:float -> t
(** Linear climb from 1.0 to [peak] over [0, until_s], flat after. *)
