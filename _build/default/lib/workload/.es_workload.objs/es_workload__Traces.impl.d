lib/workload/traces.ml: Array Cluster Es_edge Es_util Float Fun Printf Profiles String
