lib/workload/scenarios.ml: Es_edge Link Processor Scenario
