lib/workload/traces.mli: Es_edge Profiles
