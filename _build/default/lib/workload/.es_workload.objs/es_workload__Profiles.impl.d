lib/workload/profiles.ml: Float
