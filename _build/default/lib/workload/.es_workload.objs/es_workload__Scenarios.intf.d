lib/workload/scenarios.mli: Es_edge
