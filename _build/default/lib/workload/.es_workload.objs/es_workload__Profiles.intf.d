lib/workload/profiles.mli:
