(** Request arrival traces for the simulator. *)

val poisson :
  seed:int -> duration_s:float -> Es_edge.Cluster.t -> (float * int) array
(** Stationary per-device Poisson at each device's nominal rate; sorted
    (time, device id) pairs. *)

val piecewise :
  seed:int ->
  duration_s:float ->
  rate_profile:Profiles.t ->
  Es_edge.Cluster.t ->
  (float * int) array
(** Non-stationary Poisson: the instantaneous rate of device [i] at time
    [t] is [rate_i × rate_profile t], with the profile sampled at each
    inter-arrival step (accurate for profiles varying slower than the
    arrival process). *)

val merge : (float * int) array list -> (float * int) array
(** Merge several traces into one time-sorted trace. *)

val save_csv : (float * int) array -> path:string -> unit
(** Write a trace as ["time_s,device"] CSV lines (with header).
    @raise Sys_error on I/O failure. *)

val load_csv : path:string -> ((float * int) array, string) result
(** Parse a trace CSV; re-sorts by time, reports the first malformed line.
    Recorded production traces can be replayed through
    {!Es_sim.Runner.run}'s [arrivals]. *)
