(** Named application scenarios — the workloads the paper's introduction
    motivates, expressed as {!Es_edge.Scenario.spec} presets. *)

val smart_city : Es_edge.Scenario.spec
(** Camera analytics: many cheap IoT camera nodes running detection
    (yolo_tiny) and classification backbones over WiFi to a street-cabinet
    GPU; moderate rates, 200–500 ms deadlines. *)

val ar_assistant : Es_edge.Scenario.spec
(** Augmented-reality wearables: few smartphone-class devices, tight
    50–120 ms deadlines, 5G/WiFi links, lightweight models. *)

val drone_swarm : Es_edge.Scenario.spec
(** Drone fleet on LTE: Jetson-class onboard compute, detection models,
    intermittent high rates, 150–400 ms deadlines, bandwidth-poor links. *)

val by_name : string -> Es_edge.Scenario.spec
(** ["smart_city" | "ar_assistant" | "drone_swarm" | "default"].
    @raise Not_found otherwise. *)

val names : string list
