open Es_edge

let smart_city =
  {
    Scenario.seed = 101;
    n_devices = 24;
    servers = [ (Processor.edge_gpu, 400.0); (Processor.edge_cpu, 300.0) ];
    device_mix =
      [
        (Processor.iot_board, Link.wifi, 0.6);
        (Processor.raspberry_pi, Link.wifi, 0.3);
        (Processor.jetson_nano, Link.ethernet, 0.1);
      ];
    model_names = [ "yolo_tiny"; "resnet18"; "mobilenet_v2" ];
    rate_range = (0.5, 2.0);
    deadline_range = (0.2, 0.5);
    accuracy_slack = (0.88, 0.95);
  }

let ar_assistant =
  {
    Scenario.seed = 202;
    n_devices = 8;
    servers = [ (Processor.edge_gpu_small, 500.0) ];
    device_mix =
      [ (Processor.smartphone, Link.nr5g, 0.7); (Processor.smartphone, Link.wifi, 0.3) ];
    model_names = [ "mobilenet_v1"; "mobilenet_v2"; "resnet18" ];
    rate_range = (2.0, 8.0);
    deadline_range = (0.05, 0.12);
    accuracy_slack = (0.92, 0.97);
  }

let drone_swarm =
  {
    Scenario.seed = 303;
    n_devices = 12;
    servers = [ (Processor.edge_gpu, 200.0) ];
    device_mix =
      [
        (Processor.raspberry_pi, Link.lte, 0.4);
        (Processor.raspberry_pi, Link.nr5g, 0.3);
        (Processor.jetson_nano, Link.nr5g, 0.3);
      ];
    model_names = [ "yolo_tiny"; "mobilenet_v2" ];
    rate_range = (1.0, 3.0);
    deadline_range = (0.1, 0.3);
    accuracy_slack = (0.90, 0.96);
  }

let names = [ "default"; "smart_city"; "ar_assistant"; "drone_swarm" ]

let by_name = function
  | "default" -> Scenario.default
  | "smart_city" -> smart_city
  | "ar_assistant" -> ar_assistant
  | "drone_swarm" -> drone_swarm
  | _ -> raise Not_found
