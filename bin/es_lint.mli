(* The es_lint CLI entry point (see lib/lint for the analysis itself).
   Everything is private: the executable runs through its toplevel, so the
   interface is empty. *)
