(* es_lint — determinism & domain-safety static analysis over the library.

   Parses every .ml under the given paths (default: lib bin bench) and
   reports D1–D6 findings as sorted `file:line:col [rule] message` lines,
   then a per-rule summary table.  Exit status: 0 clean, 1 unsuppressed
   findings, 2 usage/IO error.  Output is byte-identical across runs and
   across any ordering or duplication of the input paths. *)

let usage () =
  prerr_endline
    "usage: es_lint [--root DIR] [--allow FILE|none] [--rules LIST] [--disable LIST]\n\
    \               [--jsonl FILE] [PATHS...]\n\
     \n\
    \  PATHS       files or directories, relative to --root (default: lib bin bench)\n\
    \  --root DIR  repo root the paths resolve against (default: .)\n\
    \  --allow F   allowlist of legacy RULE:PATH exceptions (default: lint.allow if present)\n\
    \  --rules L   comma-separated rule ids to enable (default: all of D1,D2,D3,D4,D5,D6)\n\
    \  --disable L comma-separated rule ids to disable\n\
    \  --jsonl F   also write findings as JSON lines to F";
  exit 2

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("es_lint: " ^ m); exit 2) fmt

let parse_rule_list spec =
  String.split_on_char ',' spec
  |> List.filter (fun s -> String.trim s <> "")
  |> List.map (fun s ->
         match Es_lint.Rule.of_id s with
         | Some r -> r
         | None -> fail "unknown rule id %S (expected D1..D6)" (String.trim s))

(* Deterministic directory walk: readdir order is filesystem-dependent, so
   sort entries before recursing (the engine re-sorts the union anyway). *)
let rec collect_ml root rel acc =
  let abs = Filename.concat root rel in
  if Sys.is_directory abs then
    Array.to_list (Sys.readdir abs)
    |> List.sort String.compare
    |> List.filter (fun e -> e <> "_build" && not (String.length e > 0 && e.[0] = '.'))
    |> List.fold_left (fun acc e -> collect_ml root (Filename.concat rel e) acc) acc
  else if Filename.check_suffix rel ".ml" then rel :: acc
  else acc

let () =
  let root = ref "." in
  let allow_file = ref None in
  let rules = ref Es_lint.Rule.all in
  let jsonl_out = ref None in
  let paths = ref [] in
  let rec parse = function
    | "--root" :: d :: rest ->
        root := d;
        parse rest
    | "--allow" :: f :: rest ->
        allow_file := Some f;
        parse rest
    | "--rules" :: l :: rest ->
        rules := parse_rule_list l;
        parse rest
    | "--disable" :: l :: rest ->
        let off = parse_rule_list l in
        rules := List.filter (fun r -> not (List.mem r off)) !rules;
        parse rest
    | "--jsonl" :: f :: rest ->
        jsonl_out := Some f;
        parse rest
    | ("--help" | "-h") :: _ -> usage ()
    | p :: rest when String.length p > 0 && p.[0] <> '-' ->
        paths := p :: !paths;
        parse rest
    | [] -> ()
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let allow =
    let load f =
      match Es_lint.Allowlist.load f with Ok a -> a | Error m -> fail "bad allow file: %s" m
    in
    match !allow_file with
    | Some "none" -> Es_lint.Allowlist.empty
    | Some f -> load f
    | None ->
        let default = Filename.concat !root "lint.allow" in
        if Sys.file_exists default then load default else Es_lint.Allowlist.empty
  in
  let roots = match List.rev !paths with [] -> [ "lib"; "bin"; "bench" ] | ps -> ps in
  let files =
    List.fold_left
      (fun acc p ->
        if not (Sys.file_exists (Filename.concat !root p)) then fail "no such path: %s" p;
        collect_ml !root p acc)
      [] roots
  in
  let config = { Es_lint.Engine.default_config with rules = !rules; allow; root = !root } in
  let result = Es_lint.Engine.lint_files config files in
  print_string (Es_lint.Report.render_findings result.findings);
  (match !jsonl_out with
  | Some f -> Es_lint.Report.write_jsonl ~path:f result.findings
  | None -> ());
  (* Summary always prints (and flushes) before the failing exit, so a CI
     log that stops at the exit code still shows every finding. *)
  print_string (Es_lint.Report.render_summary result);
  flush stdout;
  if result.findings <> [] then exit 1
