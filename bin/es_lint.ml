(* es_lint — determinism & domain-safety static analysis over the library.

   Parses every .ml under the given paths (default: lib bin bench) and
   reports D1–D10 findings as sorted `file:line:col [rule] message` lines,
   then a per-rule summary table.  Exit status: 0 clean, 1 unsuppressed
   (or, under --baseline, non-baselined) findings, 2 usage/IO error.
   Output is byte-identical across runs, across any ordering or
   duplication of the input paths, and across cold/warm summary caches. *)

let usage () =
  prerr_endline
    "usage: es_lint [--root DIR] [--allow FILE|none] [--rules LIST] [--disable LIST]\n\
    \               [--jsonl FILE] [--baseline FILE] [--write-baseline FILE]\n\
    \               [--summary-cache DIR] [--effects-dump FILE] [--why RULE:FILE:LINE]\n\
    \               [PATHS...]\n\
     \n\
    \  PATHS           files or directories, relative to --root (default: lib bin bench)\n\
    \  --root DIR      repo root the paths resolve against (default: .)\n\
    \  --allow F       allowlist of legacy RULE:PATH exceptions (default: lint.allow if present)\n\
    \  --rules L       comma-separated rule ids to enable (default: all of D1..D10)\n\
    \  --disable L     comma-separated rule ids to disable\n\
    \  --jsonl F       also write findings as JSON lines to F\n\
    \  --baseline F    ratchet mode: fail only on findings not in the committed baseline\n\
    \  --write-baseline F  regenerate the baseline from this run's findings and exit\n\
    \  --summary-cache D   cache per-file effect summaries in D (content-hash keyed)\n\
    \  --effects-dump F    write the fixpointed per-function effect sets to F\n\
    \  --why R:F:L     print the call chain behind the interprocedural finding\n\
    \                  of rule R at file F line L, instead of the report";
  exit 2

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("es_lint: " ^ m); exit 2) fmt

let parse_rule_list spec =
  String.split_on_char ',' spec
  |> List.filter (fun s -> String.trim s <> "")
  |> List.map (fun s ->
         match Es_lint.Rule.of_id s with
         | Some r -> r
         | None -> fail "unknown rule id %S (expected D1..D10)" (String.trim s))

(* Deterministic directory walk: readdir order is filesystem-dependent, so
   sort entries before recursing (the engine re-sorts the union anyway). *)
let rec collect_ml root rel acc =
  let abs = Filename.concat root rel in
  if Sys.is_directory abs then
    Array.to_list (Sys.readdir abs)
    |> List.sort String.compare
    |> List.filter (fun e -> e <> "_build" && not (String.length e > 0 && e.[0] = '.'))
    |> List.fold_left (fun acc e -> collect_ml root (Filename.concat rel e) acc) acc
  else if Filename.check_suffix rel ".ml" then rel :: acc
  else acc

(* --why RULE:FILE:LINE — FILE may itself contain no colons (repo paths
   don't), so a simple split is enough. *)
let parse_why spec =
  match String.split_on_char ':' spec with
  | [ rule; file; line ] -> (
      match (Es_lint.Rule.of_id rule, int_of_string_opt line) with
      | Some r, Some l when Es_lint.Rule.interprocedural r -> (r, file, l)
      | Some r, Some _ ->
          fail "--why explains interprocedural rules (D7..D10), not %s" (Es_lint.Rule.id r)
      | None, _ -> fail "--why: unknown rule id %S" rule
      | _, None -> fail "--why: bad line number %S" line)
  | _ -> fail "--why expects RULE:FILE:LINE, got %S" spec

let () =
  let root = ref "." in
  let allow_file = ref None in
  let rules = ref Es_lint.Rule.all in
  let jsonl_out = ref None in
  let baseline_in = ref None in
  let baseline_out = ref None in
  let cache_dir = ref None in
  let effects_out = ref None in
  let why = ref None in
  let paths = ref [] in
  let rec parse = function
    | "--root" :: d :: rest ->
        root := d;
        parse rest
    | "--allow" :: f :: rest ->
        allow_file := Some f;
        parse rest
    | "--rules" :: l :: rest ->
        rules := parse_rule_list l;
        parse rest
    | "--disable" :: l :: rest ->
        let off = parse_rule_list l in
        rules := List.filter (fun r -> not (List.mem r off)) !rules;
        parse rest
    | "--jsonl" :: f :: rest ->
        jsonl_out := Some f;
        parse rest
    | "--baseline" :: f :: rest ->
        baseline_in := Some f;
        parse rest
    | "--write-baseline" :: f :: rest ->
        baseline_out := Some f;
        parse rest
    | "--summary-cache" :: d :: rest ->
        cache_dir := Some d;
        parse rest
    | "--effects-dump" :: f :: rest ->
        effects_out := Some f;
        parse rest
    | "--why" :: spec :: rest ->
        why := Some (parse_why spec);
        parse rest
    | ("--help" | "-h") :: _ -> usage ()
    | p :: rest when String.length p > 0 && p.[0] <> '-' ->
        paths := p :: !paths;
        parse rest
    | [] -> ()
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let allow =
    let load f =
      match Es_lint.Allowlist.load f with Ok a -> a | Error m -> fail "bad allow file: %s" m
    in
    match !allow_file with
    | Some "none" -> Es_lint.Allowlist.empty
    | Some f -> load f
    | None ->
        let default = Filename.concat !root "lint.allow" in
        if Sys.file_exists default then load default else Es_lint.Allowlist.empty
  in
  let roots = match List.rev !paths with [] -> [ "lib"; "bin"; "bench" ] | ps -> ps in
  let files =
    List.fold_left
      (fun acc p ->
        if not (Sys.file_exists (Filename.concat !root p)) then fail "no such path: %s" p;
        collect_ml !root p acc)
      [] roots
  in
  let config =
    {
      Es_lint.Engine.default_config with
      rules = !rules;
      allow;
      root = !root;
      cache_dir = !cache_dir;
    }
  in
  let analysis = Es_lint.Engine.analyze_files config files in
  let result = analysis.Es_lint.Engine.result in
  (match !effects_out with
  | Some f ->
      let oc = open_out_bin f in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Es_lint.Callgraph.dump analysis.Es_lint.Engine.graph))
  | None -> ());
  match !why with
  | Some (rule, file, line) -> (
      match Es_lint.Callgraph.explain analysis.Es_lint.Engine.graph ~rule ~file ~line with
      | [] ->
          fail "no %s finding anchored at %s:%d (is the file in the linted path set?)"
            (Es_lint.Rule.id rule) file line
      | lines ->
          List.iter print_endline lines;
          exit 0)
  | None -> (
      match !baseline_out with
      | Some f ->
          Es_lint.Baseline.save ~path:f result.Es_lint.Engine.findings;
          Printf.printf "es_lint: wrote %d findings to %s\n"
            (List.length result.Es_lint.Engine.findings)
            f;
          exit 0
      | None ->
          let gate_findings, note =
            match !baseline_in with
            | None -> (result.Es_lint.Engine.findings, None)
            | Some f -> (
                match Es_lint.Baseline.load f with
                | Error m -> fail "bad baseline: %s" m
                | Ok b ->
                    let fresh = Es_lint.Baseline.diff b result.Es_lint.Engine.findings in
                    let covered =
                      List.length result.Es_lint.Engine.findings - List.length fresh
                    in
                    ( fresh,
                      Some
                        (Printf.sprintf
                           "es_lint: baseline %s covers %d finding(s); %d new\n" f covered
                           (List.length fresh)) ))
          in
          print_string (Es_lint.Report.render_findings gate_findings);
          (match !jsonl_out with
          | Some f -> Es_lint.Report.write_jsonl ~path:f result.Es_lint.Engine.findings
          | None -> ());
          (* Summary always prints (and flushes) before the failing exit, so a
             CI log that stops at the exit code still shows every finding. *)
          print_string (Es_lint.Report.render_summary result);
          (match note with Some n -> print_string n | None -> ());
          flush stdout;
          if gate_findings <> [] then exit 1)
