(* The edgesim CLI entry point.  Everything is private: the executable runs
   through its toplevel cmdliner evaluation, so the interface is empty. *)
