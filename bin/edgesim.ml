(* edgesim — command-line front end to the EdgeSurgeon library.

   Subcommands:
     models                     list the model zoo (or inspect one model)
     plan MODEL                 show a model's Pareto surgery candidates
     run                        solve + simulate one policy on a scenario
     compare                    run every policy on a scenario side by side
     online                     online re-optimization under a load burst *)

open Cmdliner
open Es_edge

(* ---------- shared arguments ---------- *)

let scenario_arg =
  let doc =
    Printf.sprintf "Scenario name: %s."
      (String.concat ", " Es_workload.Scenarios.names)
  in
  Arg.(value & opt string "default" & info [ "scenario" ] ~docv:"NAME" ~doc)

let devices_arg =
  let doc = "Override the number of devices." in
  Arg.(value & opt (some int) None & info [ "devices"; "n" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Scenario generation seed." in
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc)

let ap_mbps_arg =
  let doc = "Override every access point's uplink capacity (Mbps)." in
  Arg.(value & opt (some float) None & info [ "ap-mbps" ] ~docv:"MBPS" ~doc)

let duration_arg =
  let doc = "Simulated seconds." in
  Arg.(value & opt float 40.0 & info [ "duration" ] ~docv:"SECONDS" ~doc)

(* ---------- observability arguments ---------- *)

let metrics_out_arg =
  let doc = "Write a metric snapshot (counters, gauges, latency histograms) as JSONL to $(docv)." in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let trace_out_arg =
  let doc =
    "Stream per-request trace spans (root request span + per-stage child segments) as JSONL to \
     $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let no_obs_arg =
  let doc =
    "Disable all observability (overrides $(b,--metrics-out)/$(b,--trace-out)): the simulator \
     runs on its uninstrumented noop path, for overhead measurements."
  in
  Arg.(value & flag & info [ "no-obs" ] ~doc)

(* Run [body ~metrics ~spans], honouring the three obs flags: the span sink
   streams to --trace-out while [body] runs; the metric registry is dumped
   to --metrics-out afterwards. *)
let with_obs ~metrics_out ~trace_out ~no_obs body =
  let metrics_out = if no_obs then None else metrics_out in
  let trace_out = if no_obs then None else trace_out in
  (* Open both files before the (possibly long) run so a bad path fails
     fast — and cleanly — instead of after the simulation has finished. *)
  let open_out_or_die path =
    try open_out path
    with Sys_error e ->
      Printf.eprintf "edgesim: cannot open %s: %s\n" path e;
      exit 1
  in
  let metrics_oc = Option.map (fun path -> (path, open_out_or_die path)) metrics_out in
  let trace_oc = Option.map (fun path -> (path, open_out_or_die path)) trace_out in
  let metrics = Option.map (fun _ -> Es_obs.Metric.create ()) metrics_out in
  let finally () =
    Option.iter (fun (_, oc) -> close_out oc) metrics_oc;
    Option.iter (fun (_, oc) -> close_out oc) trace_oc
  in
  Fun.protect ~finally (fun () ->
      let result =
        match trace_oc with
        | None -> body ~metrics ~spans:None
        | Some (path, oc) ->
            let r = body ~metrics ~spans:(Some (Es_obs.Export.jsonl_span_sink oc)) in
            Printf.printf "wrote trace spans to %s\n" path;
            r
      in
      (match (metrics, metrics_oc) with
      | Some reg, Some (path, oc) ->
          Es_obs.Export.metrics_to_jsonl oc reg;
          Printf.printf "wrote metrics to %s\n" path
      | _ -> ());
      result)

let build_spec scenario devices seed ap_mbps =
  match Es_workload.Scenarios.by_name scenario with
  | exception Not_found ->
      Error (Printf.sprintf "unknown scenario %S (try: %s)" scenario
               (String.concat ", " Es_workload.Scenarios.names))
  | spec ->
      let spec = match devices with Some n -> Scenario.with_n_devices n spec | None -> spec in
      let spec = match seed with Some s -> Scenario.with_seed s spec | None -> spec in
      let spec = match ap_mbps with Some b -> Scenario.with_ap_mbps b spec | None -> spec in
      Ok spec

let build_cluster scenario devices seed ap_mbps =
  Result.map Scenario.build (build_spec scenario devices seed ap_mbps)

let policy_by_name name =
  List.find_opt
    (fun (p : Es_baselines.Baselines.t) ->
      String.lowercase_ascii p.Es_baselines.Baselines.name = String.lowercase_ascii name)
    (Es_baselines.Baselines.all ())

(* ---------- models ---------- *)

let models_cmd =
  let inspect =
    let doc = "Print the full layer table of one model." in
    Arg.(value & opt (some string) None & info [ "inspect" ] ~docv:"MODEL" ~doc)
  in
  let export =
    let doc = "Serialize a zoo model to a file: MODEL:PATH." in
    Arg.(value & opt (some string) None & info [ "export" ] ~docv:"MODEL:PATH" ~doc)
  in
  let load =
    let doc = "Load a serialized model file, validate it, print its summary." in
    Arg.(value & opt (some string) None & info [ "load" ] ~docv:"PATH" ~doc)
  in
  let run inspect export load =
    match (inspect, export, load) with
    | _, Some spec, _ -> (
        match String.index_opt spec ':' with
        | None ->
            Printf.eprintf "--export expects MODEL:PATH\n";
            1
        | Some i -> (
            let name = String.sub spec 0 i in
            let path = String.sub spec (i + 1) (String.length spec - i - 1) in
            match Es_dnn.Zoo.by_name name with
            | g ->
                Es_dnn.Serialize.save g ~path;
                Printf.printf "wrote %s to %s\n" name path;
                0
            | exception Not_found ->
                Printf.eprintf "unknown model %S\n" name;
                1))
    | _, _, Some path -> (
        match Es_dnn.Serialize.load ~path with
        | Ok g ->
            Format.printf "%a" Es_dnn.Graph.pp_summary g;
            0
        | Error e ->
            Printf.eprintf "%s: %s\n" path e;
            1)
    | Some name, _, _ -> (
        match Es_dnn.Zoo.by_name name with
        | g ->
            Format.printf "%a" Es_dnn.Graph.pp_summary g;
            0
        | exception Not_found ->
            Printf.eprintf "unknown model %S\n" name;
            1)
    | None, None, None ->
        Printf.printf "%-16s %6s %8s %9s %6s\n" "model" "nodes" "GFLOPs" "Mparams" "exits";
        List.iter
          (fun g ->
            Printf.printf "%-16s %6d %8.2f %9.2f %6d\n" g.Es_dnn.Graph.name
              (Es_dnn.Graph.n_nodes g)
              (Es_dnn.Graph.total_flops g /. 1e9)
              (Es_dnn.Graph.total_params g /. 1e6)
              (List.length (Es_dnn.Graph.exit_candidate_ids g)))
          (Es_dnn.Zoo.all ());
        0
  in
  Cmd.v (Cmd.info "models" ~doc:"List, inspect, export or load models")
    Term.(const run $ inspect $ export $ load)

(* ---------- plan ---------- *)

let plan_cmd =
  let model =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL" ~doc:"Zoo model name.")
  in
  let limit =
    Arg.(value & opt int 20 & info [ "limit" ] ~docv:"N" ~doc:"Show at most N candidates.")
  in
  let run model limit =
    match Es_dnn.Zoo.by_name model with
    | exception Not_found ->
        Printf.eprintf "unknown model %S\n" model;
        1
    | g ->
        let cands = Es_surgery.Candidate.pareto_candidates g in
        Printf.printf "%d Pareto candidates for %s (showing %d):\n" (List.length cands) model
          (min limit (List.length cands));
        List.iteri
          (fun i p ->
            if i < limit then
              Printf.printf "  %-50s dev=%7.1fM srv=%7.1fM xfer=%8.1fKB\n"
                (Es_surgery.Plan.describe p)
                (Es_surgery.Plan.dev_flops p /. 1e6)
                (Es_surgery.Plan.srv_flops p /. 1e6)
                (Es_surgery.Plan.transfer_bytes p /. 1e3))
          cands;
        0
  in
  Cmd.v (Cmd.info "plan" ~doc:"Show a model's Pareto surgery candidates")
    Term.(const run $ model $ limit)

(* ---------- run ---------- *)

(* Colon-separated overload flag specs ("32:0.5:5:3"); empty or missing
   fields fall back to the Overload defaults, so bare [--breaker] works. *)
let overload_policy ~admission ~breaker ~brownout ~shed =
  let fields s = if s = "" then [||] else Array.of_list (String.split_on_char ':' s) in
  let fget a i = if i < Array.length a && a.(i) <> "" then Some a.(i) else None in
  let ffloat ~flag a i ~default =
    match fget a i with
    | None -> default
    | Some s -> (
        match float_of_string_opt s with
        | Some v -> v
        | None -> failwith (Printf.sprintf "--%s: bad field %S (want a number)" flag s))
  in
  let fint ~flag a i ~default =
    match fget a i with
    | None -> default
    | Some s -> (
        match int_of_string_opt s with
        | Some v -> v
        | None -> failwith (Printf.sprintf "--%s: bad field %S (want an integer)" flag s))
  in
  try
    let admission =
      Option.map
        (fun s ->
          let a = fields s in
          let d = Es_sim.Overload.default_admission in
          { Es_sim.Overload.slack = ffloat ~flag:"admission" a 0 ~default:d.Es_sim.Overload.slack })
        admission
    in
    let breaker =
      Option.map
        (fun s ->
          let a = fields s in
          let d = Es_sim.Overload.default_breaker in
          {
            d with
            Es_sim.Overload.window = fint ~flag:"breaker" a 0 ~default:d.Es_sim.Overload.window;
            failure_rate = ffloat ~flag:"breaker" a 1 ~default:d.Es_sim.Overload.failure_rate;
            cooldown_s = ffloat ~flag:"breaker" a 2 ~default:d.Es_sim.Overload.cooldown_s;
            half_open_probes =
              fint ~flag:"breaker" a 3 ~default:d.Es_sim.Overload.half_open_probes;
          })
        breaker
    in
    let brownout =
      Option.map
        (fun s ->
          let a = fields s in
          let d = Es_sim.Overload.default_brownout in
          {
            d with
            Es_sim.Overload.high_watermark =
              fint ~flag:"brownout" a 0 ~default:d.Es_sim.Overload.high_watermark;
            low_watermark = fint ~flag:"brownout" a 1 ~default:d.Es_sim.Overload.low_watermark;
            check_every_s = ffloat ~flag:"brownout" a 2 ~default:d.Es_sim.Overload.check_every_s;
          })
        brownout
    in
    let rate_limit =
      Option.map
        (fun s ->
          let a = fields s in
          let d = Es_sim.Overload.default_rate_limit in
          {
            Es_sim.Overload.rate_per_server =
              ffloat ~flag:"shed" a 0 ~default:d.Es_sim.Overload.rate_per_server;
            burst = ffloat ~flag:"shed" a 1 ~default:d.Es_sim.Overload.burst;
          })
        shed
    in
    let policy = { Es_sim.Overload.admission; breaker; brownout; rate_limit } in
    Es_sim.Overload.validate policy;
    Ok policy
  with Failure e | Invalid_argument e -> Error e

let print_report name (r : Es_sim.Metrics.report) =
  (* Mirrors Metrics.pp_report's coverage: totals incl. drops, pooled
     quantiles, and per-server utilization — the same fields the JSONL
     export carries.  Degraded/timed-out counts appear only when non-zero,
     keeping fault-free output byte-identical to earlier builds. *)
  let resilience_part =
    (if r.Es_sim.Metrics.total_degraded > 0 then
       Printf.sprintf ", %d degraded" r.Es_sim.Metrics.total_degraded
     else "")
    ^ (if r.Es_sim.Metrics.total_timed_out > 0 then
         Printf.sprintf ", %d timed out" r.Es_sim.Metrics.total_timed_out
       else "")
    ^
    if r.Es_sim.Metrics.total_shed > 0 then
      Printf.sprintf ", %d shed" r.Es_sim.Metrics.total_shed
    else ""
  in
  Printf.printf
    "%-14s DSR %5.1f%%  mean %7.1fms  p50 %7.1fms  p95 %7.1fms  p99 %7.1fms  (%d reqs, %d \
     dropped%s, util [%s])\n"
    name (100.0 *. r.Es_sim.Metrics.dsr)
    (1000.0 *. r.Es_sim.Metrics.mean_latency_s)
    (1000.0 *. r.Es_sim.Metrics.p50_s)
    (1000.0 *. r.Es_sim.Metrics.p95_s)
    (1000.0 *. r.Es_sim.Metrics.p99_s)
    r.Es_sim.Metrics.total_generated r.Es_sim.Metrics.total_dropped resilience_part
    (String.concat "; "
       (Array.to_list
          (Array.map (fun u -> Printf.sprintf "%.2f" u) r.Es_sim.Metrics.server_utilization)))

let run_cmd =
  let policy =
    Arg.(value & opt string "EdgeSurgeon" & info [ "policy" ] ~docv:"NAME" ~doc:"Policy name.")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print every per-device decision.")
  in
  let faults =
    let doc =
      "Inject faults: an inline spec or a file of one event per line ($(b,#) comments). Tokens: \
       down:S@T[+DUR], up:S@T, outage:D@T+DUR, degrade:D:F@T+DUR, straggle:S:F@T+DUR."
    in
    Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"SPEC|FILE" ~doc)
  in
  let retries =
    let doc = "Retry a failed request attempt up to N times (exponential backoff)." in
    Arg.(value & opt (some int) None & info [ "retries" ] ~docv:"N" ~doc)
  in
  let timeout_factor =
    let doc = "Time a request out after FACTOR x its device deadline (0 disables)." in
    Arg.(value & opt (some float) None & info [ "timeout-factor" ] ~docv:"FACTOR" ~doc)
  in
  let fallback =
    let doc =
      "Failure response: $(b,none) drops requests hit by a fault; $(b,local) re-executes them \
       on-device with the fastest local plan; $(b,resolve) additionally swaps in precomputed \
       recovery decisions (residual re-solve per failed server) shortly after each crash."
    in
    Arg.(
      value
      & opt (enum [ ("none", `None); ("local", `Local); ("resolve", `Resolve) ]) `None
      & info [ "fallback" ] ~docv:"MODE" ~doc)
  in
  let heavy_devices =
    let doc =
      "Replace the scenario's device list with a $(docv)-strong heavy-traffic population \
       stamped from a few archetypes (servers scale with it); arrivals come from an explicit \
       non-stationary trace instead of per-device Poisson draws."
    in
    Arg.(value & opt (some int) None & info [ "heavy-devices" ] ~docv:"N" ~doc)
  in
  let heavy_archetypes =
    let doc = "Number of device archetypes the heavy population is stamped from." in
    Arg.(value & opt int 4 & info [ "heavy-archetypes" ] ~docv:"K" ~doc)
  in
  let load_profile =
    let doc =
      Printf.sprintf "Load shape modulating every device's arrival rate over the run: %s."
        (String.concat ", " Es_workload.Heavy.profile_names)
    in
    Arg.(value & opt (some string) None & info [ "load-profile" ] ~docv:"NAME" ~doc)
  in
  let streaming =
    let doc =
      "Stream metrics incrementally (constant memory: pooled moments + a histogram sketch \
       instead of per-request samples) and print engine throughput and request-conservation \
       lines after the run."
    in
    Arg.(value & flag & info [ "streaming" ] ~doc)
  in
  let admission =
    let doc =
      "Deadline-aware admission control: shed a request at arrival when its backlog-based \
       completion estimate exceeds $(docv) x the latency budget (bare flag: slack 1.0)."
    in
    Arg.(value & opt ~vopt:(Some "") (some string) None & info [ "admission" ] ~docv:"SLACK" ~doc)
  in
  let breaker =
    let doc =
      "Per-server circuit breakers: trip on a rolling failure-rate window, reroute offloads \
       to the local plan while open, half-open probes re-close. Spec \
       $(b,WINDOW:FAILRATE:COOLDOWN:PROBES); empty fields (or a bare flag) use the defaults \
       32:0.5:5:3."
    in
    Arg.(
      value
      & opt ~vopt:(Some "") (some string) None
      & info [ "breaker" ] ~docv:"W:F:C:P" ~doc)
  in
  let brownout =
    let doc =
      "Brownout plan degradation: above $(b,HIGH) queued jobs on a server its incoming \
       devices switch to their fastest local-only plans, restoring at or below $(b,LOW). \
       Spec $(b,HIGH:LOW[:PERIOD]); bare flag uses the defaults 32:8:0.5."
    in
    Arg.(
      value
      & opt ~vopt:(Some "") (some string) None
      & info [ "brownout" ] ~docv:"HIGH:LOW" ~doc)
  in
  let shed =
    let doc =
      "Per-server token-bucket rate limiting: shed offloads arriving beyond \
       $(b,RATE[:BURST]) requests/s per server. Rate 0 (the bare-flag default) derives the \
       rate from each server's granted service capacity, tracking reconfigurations and \
       straggler faults."
    in
    Arg.(
      value & opt ~vopt:(Some "") (some string) None & info [ "shed" ] ~docv:"RATE:BURST" ~doc)
  in
  let run scenario devices seed ap_mbps duration policy verbose faults retries timeout_factor
      fallback admission breaker brownout shed heavy_devices heavy_archetypes load_profile
      streaming metrics_out trace_out no_obs =
    let heavy_setup =
      (* Heavy population and/or explicit profiled arrivals; [None] leaves
         the classic path (and its golden output) untouched. *)
      match build_spec scenario devices seed ap_mbps with
      | Error e -> Error e
      | Ok spec -> (
          let profile_r =
            match load_profile with
            | None -> Ok (Es_workload.Profiles.constant 1.0)
            | Some name -> (
                match Es_workload.Heavy.profile_by_name ~duration_s:duration name with
                | p -> Ok p
                | exception Not_found ->
                    Error
                      (Printf.sprintf "unknown --load-profile %S (try: %s)" name
                         (String.concat ", " Es_workload.Heavy.profile_names)))
          in
          match profile_r with
          | Error e -> Error e
          | Ok profile -> (
              match heavy_devices with
              | Some n when n < 1 -> Error "--heavy-devices must be >= 1"
              | Some _ when heavy_archetypes < 1 -> Error "--heavy-archetypes must be >= 1"
              | Some n ->
                  let cluster =
                    Es_workload.Heavy.population ~k:heavy_archetypes ~devices:n spec
                  in
                  let trace =
                    Es_workload.Heavy.trace ~seed:spec.Scenario.seed ~duration_s:duration
                      ~profile cluster
                  in
                  Ok (Some (cluster, Some trace))
              | None -> (
                  match load_profile with
                  | None -> Ok None
                  | Some _ ->
                      let cluster = Scenario.build spec in
                      let trace =
                        Es_workload.Heavy.trace ~seed:spec.Scenario.seed ~duration_s:duration
                          ~profile cluster
                      in
                      Ok (Some (cluster, Some trace)))))
    in
    let cluster_r =
      match heavy_setup with
      | Error e -> Error e
      | Ok (Some (cluster, trace)) -> Ok (cluster, trace)
      | Ok None ->
          Result.map (fun c -> (c, None)) (build_cluster scenario devices seed ap_mbps)
    in
    match cluster_r with
    | Error e ->
        Printf.eprintf "%s\n" e;
        1
    | Ok (cluster, arrivals) -> (
        match policy_by_name policy with
        | None ->
            Printf.eprintf "unknown policy %S (try: %s)\n" policy
              (String.concat ", "
                 (List.map
                    (fun (p : Es_baselines.Baselines.t) -> p.Es_baselines.Baselines.name)
                    (Es_baselines.Baselines.all ())));
            1
        | Some p -> (
            let fault_schedule =
              match faults with
              | None -> Ok Es_sim.Faults.empty
              | Some arg -> (
                  (* Index ranges are checked here against the scenario's
                     cluster so a typo dies with a CLI error, not an
                     uncaught exception out of the runner. *)
                  match Es_sim.Faults.of_spec_or_file arg with
                  | Error _ as e -> e
                  | Ok schedule -> (
                      match
                        Es_sim.Faults.validate
                          ~n_devices:(Cluster.n_devices cluster)
                          ~n_servers:(Cluster.n_servers cluster)
                          schedule
                      with
                      | Ok () -> Ok schedule
                      | Error _ as e -> e))
            in
            match fault_schedule with
            | Error e ->
                Printf.eprintf "bad --faults: %s\n" e;
                1
            | Ok fault_schedule -> (
            match overload_policy ~admission ~breaker ~brownout ~shed with
            | Error e ->
                Printf.eprintf "bad overload flags: %s\n" e;
                1
            | Ok overload ->
                (* A heavy population would print thousands of per-device
                   lines; summarize it instead. *)
                if heavy_devices <> None then
                  Printf.printf "cluster: %d devices (%d archetypes), %d servers\n"
                    (Cluster.n_devices cluster) heavy_archetypes (Cluster.n_servers cluster)
                else Format.printf "%a" Cluster.pp_summary cluster;
                if not (Es_sim.Faults.is_empty fault_schedule) then
                  Format.printf "fault schedule:@.%a@?" Es_sim.Faults.pp fault_schedule;
                let decisions = p.Es_baselines.Baselines.solve cluster in
                if verbose then
                  Array.iter (fun d -> Format.printf "  %a@." Decision.pp d) decisions;
                (* Any resilience knob (or a non-none fallback) switches the
                   per-request policy on; the defaults fill the gaps. *)
                let resilience =
                  if retries = None && timeout_factor = None && fallback = `None then None
                  else begin
                    let d = Es_sim.Runner.default_resilience in
                    Some
                      {
                        d with
                        Es_sim.Runner.max_retries =
                          Option.value retries ~default:d.Es_sim.Runner.max_retries;
                        timeout_factor =
                          Option.value timeout_factor ~default:d.Es_sim.Runner.timeout_factor;
                        local_fallback = fallback <> `None;
                      }
                  end
                in
                let reconfigure =
                  match fallback with
                  | `Resolve when not (Es_sim.Faults.is_empty fault_schedule) ->
                      let recover = Es_joint.Recover.precompute cluster in
                      let entries =
                        Es_joint.Recover.schedule_for_faults recover ~decisions fault_schedule
                      in
                      Printf.printf "recovery: %d precomputed fallback set(s), %d swap(s)\n"
                        (Cluster.n_servers cluster) (List.length entries);
                      entries
                  | _ -> []
                in
                let options =
                  {
                    Es_sim.Runner.default_options with
                    duration_s = duration;
                    faults = fault_schedule;
                    resilience;
                    streaming;
                    overload;
                  }
                in
                let engine_stats = ref None in
                let t0 = Es_obs.Obs.wall_clock () in
                let report =
                  with_obs ~metrics_out ~trace_out ~no_obs (fun ~metrics ~spans ->
                      Es_sim.Runner.run ~options ?metrics ?spans ~reconfigure ?arrivals
                        ~on_stats:(fun s -> engine_stats := Some s)
                        cluster decisions)
                in
                let wall_s = Es_obs.Obs.wall_clock () -. t0 in
                print_report p.Es_baselines.Baselines.name report;
                if streaming then begin
                  (match !engine_stats with
                  | Some (s : Es_sim.Engine.stats) ->
                      Printf.printf
                        "engine: %d events in %.2fs wall (%.0f events/s), max pending %d\n"
                        s.Es_sim.Engine.events_processed wall_s
                        (float_of_int s.Es_sim.Engine.events_processed /. Float.max 1e-9 wall_s)
                        s.Es_sim.Engine.max_pending
                  | None -> ());
                  let g = report.Es_sim.Metrics.total_generated in
                  let c = report.Es_sim.Metrics.total_completed in
                  let d = report.Es_sim.Metrics.total_dropped in
                  let t = report.Es_sim.Metrics.total_timed_out in
                  let s = report.Es_sim.Metrics.total_shed in
                  Printf.printf
                    "outcomes: %d completed (%d degraded) + %d dropped + %d timed out + %d \
                     shed = %d generated\n"
                    c report.Es_sim.Metrics.total_degraded d t s (c + d + t + s);
                  if s > 0 then
                    Printf.printf "admitted DSR %.1f%% over %d admitted\n"
                      (100.0 *. report.Es_sim.Metrics.dsr_admitted)
                      (g - s);
                  if g = c + d + t + s then begin
                    Printf.printf "conservation OK: %d = %d + %d + %d + %d\n" g c d t s;
                    0
                  end
                  else begin
                    Printf.printf "conservation VIOLATED: %d generated vs %d + %d + %d + %d\n"
                      g c d t s;
                    1
                  end
                end
                else 0)))
  in
  Cmd.v (Cmd.info "run" ~doc:"Solve and simulate one policy on a scenario")
    Term.(
      const run $ scenario_arg $ devices_arg $ seed_arg $ ap_mbps_arg $ duration_arg $ policy
      $ verbose $ faults $ retries $ timeout_factor $ fallback $ admission $ breaker
      $ brownout $ shed $ heavy_devices $ heavy_archetypes $ load_profile $ streaming
      $ metrics_out_arg $ trace_out_arg $ no_obs_arg)

(* ---------- compare ---------- *)

let compare_cmd =
  let run scenario devices seed ap_mbps duration =
    match build_cluster scenario devices seed ap_mbps with
    | Error e ->
        Printf.eprintf "%s\n" e;
        1
    | Ok cluster ->
        Format.printf "%a" Cluster.pp_summary cluster;
        List.iter
          (fun (p : Es_baselines.Baselines.t) ->
            let decisions = p.Es_baselines.Baselines.solve cluster in
            let options = { Es_sim.Runner.default_options with duration_s = duration } in
            let report = Es_sim.Runner.run ~options cluster decisions in
            print_report p.Es_baselines.Baselines.name report)
          (Es_baselines.Baselines.all ());
        0
  in
  Cmd.v (Cmd.info "compare" ~doc:"Run every policy on a scenario side by side")
    Term.(const run $ scenario_arg $ devices_arg $ seed_arg $ ap_mbps_arg $ duration_arg)

(* ---------- sweep ---------- *)

let sweep_cmd =
  let param =
    let doc = "Swept parameter: devices, ap-mbps, or rate (load multiplier)." in
    Arg.(value & opt string "ap-mbps" & info [ "param" ] ~docv:"NAME" ~doc)
  in
  let values =
    let doc = "Comma-separated sweep values." in
    Arg.(value & opt string "25,50,100,200" & info [ "values" ] ~docv:"V1,V2,..." ~doc)
  in
  let csv =
    let doc = "Write results as CSV to this file instead of a table on stdout." in
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"PATH" ~doc)
  in
  let jobs =
    let doc =
      "Run independent (value, policy) cells on this many domains (0 = auto). Results are \
       identical to a sequential sweep."
    in
    Arg.(value & opt int 1 & info [ "jobs" ] ~docv:"N" ~doc)
  in
  let run scenario devices seed duration param values csv jobs =
    let parsed_values =
      String.split_on_char ',' values |> List.filter_map float_of_string_opt
    in
    if parsed_values = [] then begin
      Printf.eprintf "no valid values in %S\n" values;
      1
    end
    else begin
      match build_cluster scenario devices seed None with
      | Error e ->
          Printf.eprintf "%s\n" e;
          1
      | Ok base ->
          let cluster_at v =
            match param with
            | "devices" ->
                Result.to_option
                  (build_cluster scenario (Some (int_of_float v)) seed None)
            | "ap-mbps" -> Result.to_option (build_cluster scenario devices seed (Some v))
            | "rate" -> Some (Es_joint.Online.scale_rates base v)
            | _ -> None
          in
          if cluster_at (List.hd parsed_values) = None then begin
            Printf.eprintf "unknown sweep parameter %S (devices|ap-mbps|rate)\n" param;
            1
          end
          else begin
            let policies = Es_baselines.Baselines.all () in
            (* Each (value, policy) cell is independent and deterministic
               (fixed sim seed), so they fan out over domains under --jobs;
               collection order below is input order either way. *)
            let cells =
              List.concat_map
                (fun v ->
                  match cluster_at v with
                  | None -> []
                  | Some cluster ->
                      List.map (fun (p : Es_baselines.Baselines.t) -> (v, cluster, p)) policies)
                parsed_values
            in
            let rows =
              Es_util.Par.parallel_map ~jobs
                (fun (v, cluster, (p : Es_baselines.Baselines.t)) ->
                  let decisions = p.Es_baselines.Baselines.solve cluster in
                  let options = { Es_sim.Runner.default_options with duration_s = duration } in
                  let r = Es_sim.Runner.run ~options cluster decisions in
                  ( v,
                    p.Es_baselines.Baselines.name,
                    r.Es_sim.Metrics.dsr,
                    r.Es_sim.Metrics.mean_latency_s,
                    r.Es_sim.Metrics.p99_s ))
                cells
            in
            (match csv with
            | Some path ->
                let oc = open_out path in
                Fun.protect
                  ~finally:(fun () -> close_out oc)
                  (fun () ->
                    Printf.fprintf oc "%s,policy,dsr,mean_s,p99_s\n" param;
                    List.iter
                      (fun (v, name, dsr, mean, p99) ->
                        Printf.fprintf oc "%g,%s,%.6f,%.6f,%.6f\n" v name dsr mean p99)
                      rows);
                Printf.printf "wrote %d rows to %s\n" (List.length rows) path
            | None ->
                Printf.printf "%-10s %-14s %8s %10s %10s\n" param "policy" "DSR(%)" "mean(ms)"
                  "p99(ms)";
                List.iter
                  (fun (v, name, dsr, mean, p99) ->
                    Printf.printf "%-10g %-14s %8.1f %10.1f %10.1f\n" v name (100. *. dsr)
                      (1000. *. mean) (1000. *. p99))
                  rows);
            0
          end
    end
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Sweep a parameter across every policy, optionally to CSV")
    Term.(
      const run $ scenario_arg $ devices_arg $ seed_arg $ duration_arg $ param $ values $ csv
      $ jobs)

(* ---------- online ---------- *)

(* ---------- solve ---------- *)

let sharded_arg =
  let doc =
    "Use the sharded hierarchical solver (Es_scale): per-server subproblems under \
     dual-price coordination, instead of the monolithic optimizer."
  in
  Arg.(value & flag & info [ "sharded" ] ~doc)

let shards_max_sweeps_arg =
  let doc = "Coordination sweeps cap for the sharded solver." in
  Arg.(value & opt (some int) None & info [ "shards-max-sweeps" ] ~docv:"N" ~doc)

let sharded_config ~jobs ~max_sweeps =
  let base = Es_scale.default_config in
  let base = match jobs with Some j -> { base with Es_scale.jobs = j } | None -> base in
  match max_sweeps with
  | Some n -> { base with Es_scale.max_sweeps = n }
  | None -> base

let solve_cmd =
  let servers =
    Arg.(
      value & opt (some int) None
      & info [ "servers" ] ~docv:"K"
          ~doc:"Override the number of edge servers (cycles the scenario's server specs).")
  in
  let jobs =
    Arg.(
      value & opt (some int) None
      & info [ "jobs" ] ~docv:"N" ~doc:"Worker domains for the solve (0 = auto).")
  in
  let vs_mono =
    Arg.(
      value & flag
      & info [ "vs-monolithic" ]
          ~doc:
            "Also run the monolithic optimizer on the same cluster and fail (exit 1) \
             when the sharded objective exceeds $(b,--tolerance) of it.")
  in
  let tolerance =
    Arg.(
      value & opt float 0.25
      & info [ "tolerance" ] ~docv:"EPS"
          ~doc:"Relative objective slack for $(b,--vs-monolithic) (default 0.25).")
  in
  let run scenario devices servers seed ap_mbps jobs sharded max_sweeps vs_mono tolerance =
    match build_cluster scenario devices seed ap_mbps with
    | Error e ->
        Printf.eprintf "%s\n" e;
        1
    | Ok cluster ->
        let cluster =
          match servers with
          | None -> cluster
          | Some k ->
              Scenario.build
                (Es_workload.Scenarios.by_name scenario
                |> (match devices with Some n -> Scenario.with_n_devices n | None -> Fun.id)
                |> (match seed with Some s -> Scenario.with_seed s | None -> Fun.id)
                |> (match ap_mbps with Some b -> Scenario.with_ap_mbps b | None -> Fun.id)
                |> Scenario.with_n_servers k)
        in
        Printf.printf "cluster: %d devices, %d servers\n" (Cluster.n_devices cluster)
          (Cluster.n_servers cluster);
        let fail = ref false in
        let feasibility label decisions =
          match Decision.validate cluster decisions with
          | Ok () -> ()
          | Error e ->
              Printf.printf "%s: INFEASIBLE: %s\n" label e;
              fail := true
        in
        if sharded then begin
          let config = sharded_config ~jobs ~max_sweeps in
          let out = Es_scale.solve ~config cluster in
          Printf.printf
            "sharded:    objective %.6f  (%d sweeps, %d shard solves, %d moves, %.3fs)\n"
            out.Es_scale.objective out.Es_scale.sweeps out.Es_scale.shard_solves
            out.Es_scale.moves out.Es_scale.solve_time_s;
          feasibility "sharded" out.Es_scale.decisions;
          (* Determinism is part of the sharded solver's contract; check it
             whenever we are already solving (one extra solve). *)
          let alt_jobs = match jobs with Some j when j <> 1 -> 1 | _ -> 2 in
          let alt =
            Es_scale.solve ~config:{ config with Es_scale.jobs = alt_jobs } cluster
          in
          if
            Decision.fingerprint alt.Es_scale.decisions
            <> Decision.fingerprint out.Es_scale.decisions
          then begin
            Printf.printf "sharded: NOT deterministic across --jobs\n";
            fail := true
          end
          else Printf.printf "sharded:    bit-identical across --jobs\n";
          if vs_mono then begin
            let mono_cfg =
              match jobs with
              | Some j -> { Es_joint.Optimizer.default_config with jobs = j }
              | None -> Es_joint.Optimizer.default_config
            in
            let mono = Es_joint.Optimizer.solve ~config:mono_cfg cluster in
            let ratio = out.Es_scale.objective /. mono.Es_joint.Optimizer.objective in
            Printf.printf "monolithic: objective %.6f  (%.3fs)  sharded/mono %.3f\n"
              mono.Es_joint.Optimizer.objective mono.Es_joint.Optimizer.solve_time_s
              ratio;
            feasibility "monolithic" mono.Es_joint.Optimizer.decisions;
            if ratio > 1.0 +. tolerance then begin
              Printf.printf "sharded objective outside tolerance (%.3f > 1+%.2f)\n" ratio
                tolerance;
              fail := true
            end
          end
        end
        else begin
          let config =
            match jobs with
            | Some j -> { Es_joint.Optimizer.default_config with jobs = j }
            | None -> Es_joint.Optimizer.default_config
          in
          let out = Es_joint.Optimizer.solve ~config cluster in
          Printf.printf "monolithic: objective %.6f  (%d iterations, %.3fs)\n"
            out.Es_joint.Optimizer.objective out.Es_joint.Optimizer.iterations
            out.Es_joint.Optimizer.solve_time_s;
          feasibility "monolithic" out.Es_joint.Optimizer.decisions
        end;
        if !fail then 1 else 0
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:"Solve a scenario once (monolithic or sharded) and report the objective")
    Term.(
      const run $ scenario_arg $ devices_arg $ servers $ seed_arg $ ap_mbps_arg $ jobs
      $ sharded_arg $ shards_max_sweeps_arg $ vs_mono $ tolerance)

let online_cmd =
  let burst =
    Arg.(value & opt float 3.0 & info [ "burst" ] ~docv:"FACTOR" ~doc:"Burst load multiplier.")
  in
  let epoch =
    Arg.(value & opt float 15.0 & info [ "epoch" ] ~docv:"SECONDS" ~doc:"Re-optimization period.")
  in
  let warm_start =
    Arg.(
      value & opt bool true
      & info [ "warm-start" ] ~docv:"BOOL"
          ~doc:"Seed each epoch re-solve from the incumbent decisions (default true).")
  in
  let no_solve_cache =
    Arg.(
      value & flag
      & info [ "no-solve-cache" ]
          ~doc:"Disable the (cluster, config)-keyed solve cache for epoch re-solves.")
  in
  let run scenario devices seed ap_mbps burst epoch warm_start no_solve_cache sharded
      shards_max_sweeps =
    match build_cluster scenario devices seed ap_mbps with
    | Error e ->
        Printf.eprintf "%s\n" e;
        1
    | Ok cluster ->
        let duration = 180.0 in
        let profile =
          Es_workload.Profiles.step_burst ~start_s:(duration /. 3.0)
            ~stop_s:(2.0 *. duration /. 3.0) ~factor:burst
        in
        let options = { Es_sim.Runner.default_options with duration_s = duration } in
        let cache =
          if no_solve_cache then None else Some (Es_joint.Solve_cache.create ())
        in
        let solver =
          if sharded then
            Some
              (Es_scale.solver
                 ~config:(sharded_config ~jobs:None ~max_sweeps:shards_max_sweeps)
                 ?cache ())
          else None
        in
        let adaptive =
          Es_joint.Online.run ~options ?cache ?solver ~warm_start ~epoch_s:epoch
            ~rate_profile:profile cluster
        in
        let static = Es_joint.Online.run_static ~options ~rate_profile:profile cluster in
        Printf.printf "load burst x%.1f during [%.0fs, %.0fs) of %.0fs\n" burst (duration /. 3.0)
          (2.0 *. duration /. 3.0) duration;
        print_report "static" static.Es_joint.Online.report;
        print_report
          (Printf.sprintf "adaptive(%d)" adaptive.Es_joint.Online.resolve_count)
          adaptive.Es_joint.Online.report;
        (match cache with
        | None -> ()
        | Some sc ->
            let s = Es_joint.Solve_cache.stats sc in
            Printf.printf
              "solve cache: %d hits, %d misses, %d evictions, %d entries\n"
              s.Es_joint.Solve_cache.hits s.Es_joint.Solve_cache.misses
              s.Es_joint.Solve_cache.evictions s.Es_joint.Solve_cache.entries);
        0
  in
  Cmd.v (Cmd.info "online" ~doc:"Online re-optimization under a load burst")
    Term.(
      const run $ scenario_arg $ devices_arg $ seed_arg $ ap_mbps_arg $ burst $ epoch
      $ warm_start $ no_solve_cache $ sharded_arg $ shards_max_sweeps_arg)

(* ---------- trace ---------- *)

let trace_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"PATH" ~doc:"Save the generated trace as CSV.")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"PATH" ~doc:"Replay a CSV trace through the simulator.")
  in
  let burst =
    Arg.(
      value & opt (some float) None
      & info [ "burst" ] ~docv:"FACTOR"
          ~doc:"Generate with a step burst of this factor in the middle third.")
  in
  let run scenario devices seed duration out replay burst metrics_out trace_out no_obs =
    match build_cluster scenario devices seed None with
    | Error e ->
        Printf.eprintf "%s\n" e;
        1
    | Ok cluster -> (
        let arrivals =
          match replay with
          | Some path -> Es_workload.Traces.load_csv ~path
          | None ->
              let profile =
                match burst with
                | None -> Es_workload.Profiles.constant 1.0
                | Some factor ->
                    Es_workload.Profiles.step_burst ~start_s:(duration /. 3.0)
                      ~stop_s:(2.0 *. duration /. 3.0) ~factor
              in
              Ok
                (Es_workload.Traces.piecewise
                   ~seed:(Option.value seed ~default:7)
                   ~duration_s:duration ~rate_profile:profile cluster)
        in
        match arrivals with
        | Error e ->
            Printf.eprintf "%s\n" e;
            1
        | Ok arrivals -> (
            Printf.printf "%d arrivals over %.0fs for %d devices\n" (Array.length arrivals)
              duration (Cluster.n_devices cluster);
            match out with
            | Some path ->
                Es_workload.Traces.save_csv arrivals ~path;
                Printf.printf "saved to %s\n" path;
                0
            | None ->
                (* The optimizer and the simulator report into the same
                   registry/sink: solver iterations in wall-clock spans,
                   requests in simulated-time spans. *)
                let report =
                  with_obs ~metrics_out ~trace_out ~no_obs (fun ~metrics ~spans ->
                      let decisions =
                        (Es_joint.Optimizer.solve ?metrics ?spans cluster)
                          .Es_joint.Optimizer.decisions
                      in
                      let options =
                        { Es_sim.Runner.default_options with duration_s = duration }
                      in
                      Es_sim.Runner.run ~options ?metrics ?spans ~arrivals cluster decisions)
                in
                print_report "EdgeSurgeon" report;
                0))
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Generate, save, or replay arrival traces")
    Term.(
      const run $ scenario_arg $ devices_arg $ seed_arg $ duration_arg $ out $ replay $ burst
      $ metrics_out_arg $ trace_out_arg $ no_obs_arg)

let () =
  let info =
    Cmd.info "edgesim" ~version:"1.0.0"
      ~doc:"Joint model surgery and resource allocation for edge DNN inference"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ models_cmd; plan_cmd; solve_cmd; run_cmd; compare_cmd; sweep_cmd; online_cmd; trace_cmd ]))
